"""Figures 8/9: end-to-end GPT-2 and BERT training-step profiling.

§3.4 profiles ``GPT2LMHeadModel`` and ``BertForMaskedLM`` on BookCorpus
with sequence length 2048, batch size 8, 2 layers, 8 heads, head dim
64 — batch 8 "due to limited GAUDI memory". The profiled unit here is a
full training iteration: forward, loss, backward, optimizer step.

Reproduced observations: many blank areas on the MME; those blanks
coincide with TPC execution (MME waiting on non-matmul work); the
MME/TPC workload is unbalanced. We additionally reproduce the memory
constraint itself: compiling the same graph at batch 128 exceeds the
32 GB HBM plan and is rejected.

Known deviation (recorded in EXPERIMENTS.md): with only 2 layers, the
~50k-vocabulary LM head matmuls keep the simulated MME busier overall
than the paper's qualitative "TPC obviously busy" description; the
within-layer regions show the Fig 4 imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import ht
from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..models import (
    BertForMaskedLM,
    GPT2LMHeadModel,
    paper_bert_config,
    paper_gpt_config,
)
from ..synapse import ProfileResult, SynapseProfiler, ascii_timeline
from ..util.errors import DataError, DeviceMemoryError
from .insights import describe_insights, gap_overlap_fraction, imbalance_index
from .reference import E2E_SHAPES, ShapeCheck, threshold_check

MODEL_BUILDERS = {
    "gpt": (GPT2LMHeadModel, paper_gpt_config),
    "bert": (BertForMaskedLM, paper_bert_config),
}


def record_training_step(
    model_name: str,
    *,
    batch: int | None = None,
    seq_len: int | None = None,
    optimizer: str = "sgd",
    checkpoint: bool = False,
) -> "ht.Recorder":
    """Record one symbolic training iteration of the §3.4 model.

    With ``checkpoint``, each transformer layer records as a
    checkpoint segment (:func:`repro.ht.checkpoint`), giving the
    memory planner license to recompute its internal activations
    instead of keeping them resident through backward.
    """
    if model_name not in MODEL_BUILDERS:
        raise DataError(
            f"unknown model {model_name!r}; use 'gpt' or 'bert'"
        )
    model_cls, config_fn = MODEL_BUILDERS[model_name]
    cfg = config_fn()
    batch = batch or E2E_SHAPES["batch"]
    seq_len = seq_len or E2E_SHAPES["seq_len"]
    model = model_cls(cfg, materialize=False)
    if checkpoint:
        stack = getattr(model, "decoder", None) or getattr(
            model, "encoder", None
        )
        stack.checkpoint_activations = True
    with ht.record(f"{model_name}-train-step", mode="symbolic") as rec:
        input_ids = ht.input_tensor((batch, seq_len), name="input_ids")
        targets = ht.input_tensor(
            (batch, seq_len, cfg.vocab_size), name="targets",
        )
        loss = model.loss(input_ids, targets)
        loss.backward()
        opt = (ht.SGD if optimizer == "sgd" else ht.AdamLike)(
            model.parameters(), lr=0.01
        )
        opt.step()
    return rec


def record_forward_step(
    model_name: str,
    *,
    batch: int | None = None,
    seq_len: int | None = None,
) -> "ht.Recorder":
    """Record one symbolic *forward-only* pass (inference prefill)."""
    if model_name not in MODEL_BUILDERS:
        raise DataError(
            f"unknown model {model_name!r}; use 'gpt' or 'bert'"
        )
    model_cls, config_fn = MODEL_BUILDERS[model_name]
    cfg = config_fn()
    batch = batch or E2E_SHAPES["batch"]
    seq_len = seq_len or E2E_SHAPES["seq_len"]
    model = model_cls(cfg, materialize=False)
    with ht.record(f"{model_name}-forward", mode="symbolic") as rec:
        input_ids = ht.input_tensor((batch, seq_len), name="input_ids")
        model(input_ids)
    return rec


@dataclass
class E2EProfileResult:
    """One model's profiled training step."""

    model_name: str
    profile: ProfileResult
    oom_at_large_batch: bool
    large_batch: int
    batch: int = E2E_SHAPES["batch"]
    seq_len: int = E2E_SHAPES["seq_len"]
    config: GaudiConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = GaudiConfig()

    @property
    def timeline(self):
        """The trace."""
        return self.profile.timeline

    @property
    def tokens_per_second(self) -> float:
        """Training throughput at the profiled shapes."""
        return self.batch * self.seq_len / (self.profile.total_time_us / 1e6)

    @property
    def mfu(self) -> float:
        """Model FLOPs utilization: graph FLOPs / (time x MME peak).

        The standard LLM-training efficiency number; on this workload
        it is bounded by everything the paper complains about — the
        TPC detours, the DMA hops, the serial engine queues.
        """
        total_flops = self.profile.schedule.total_flops()
        peak = self.config.mme.peak_tflops * 1e12
        seconds = self.profile.total_time_us / 1e6
        if seconds <= 0:
            return 0.0
        return total_flops / (seconds * peak)

    def checks(self) -> list[ShapeCheck]:
        """The §3.4 qualitative claims for this model."""
        tl = self.timeline
        n_gaps = len(tl.gaps(EngineKind.MME, min_dur_us=20.0))
        return [
            ShapeCheck(
                f"fig8/9 [{self.model_name}]: many blank areas on the MME",
                n_gaps >= 10,
                f"{n_gaps} gaps > 20us",
                ">= 10 gaps",
            ),
            threshold_check(
                f"fig8/9 [{self.model_name}]: MME idle fraction",
                self.profile.mme_idle_fraction, 0.10,
            ),
            ShapeCheck(
                f"fig8/9 [{self.model_name}]: MME blanks coincide with TPC work",
                gap_overlap_fraction(tl, EngineKind.MME, EngineKind.TPC) > 0.6,
                f"{gap_overlap_fraction(tl, EngineKind.MME, EngineKind.TPC):.1%}",
                "> 60%",
            ),
            threshold_check(
                f"fig8/9 [{self.model_name}]: MME/TPC workload imbalance",
                imbalance_index(tl), 0.15,
            ),
            ShapeCheck(
                f"fig8/9 [{self.model_name}]: softmax runs on the TPC",
                tl.src_share("softmax", EngineKind.TPC) > 0.0,
                f"{tl.src_share('softmax', EngineKind.TPC):.1%} of TPC busy",
                "> 0",
            ),
            ShapeCheck(
                f"fig8/9 [{self.model_name}]: batch {self.large_batch} "
                "exceeds 32 GB HBM (paper ran batch 8 'due to limited "
                "GAUDI memory')",
                self.oom_at_large_batch,
                "OOM raised" if self.oom_at_large_batch else "fit",
                "OOM",
            ),
            ShapeCheck(
                f"fig8/9 [{self.model_name}]: batch 8 fits in 32 GB HBM",
                self.profile.peak_hbm_bytes
                <= GaudiConfig().hbm.capacity_bytes,
                f"{self.profile.peak_hbm_bytes / (1 << 30):.1f} GiB",
                "<= 32 GiB",
            ),
        ]

    def render(self, *, width: int = 100) -> str:
        """The 'figure': trace lanes + narrative."""
        fig = "Figure 8 (GPT)" if self.model_name == "gpt" else "Figure 9 (BERT)"
        phases = ", ".join(
            f"{scope} {share:.0%}"
            for scope, _, share in self.profile.scope_breakdown(depth=1)[:5]
        )
        return "\n".join([
            f"== {fig}: training step {self.profile.total_time_ms:.1f} ms, "
            f"peak HBM {self.profile.peak_hbm_bytes / (1 << 30):.1f} GiB ==",
            f"throughput {self.tokens_per_second:,.0f} tokens/s, "
            f"MFU {self.mfu:.1%}",
            f"busy time by phase: {phases}",
            ascii_timeline(self.timeline, width=width),
            describe_insights(self.timeline),
        ])


def run_e2e(
    model_name: str,
    *,
    config: GaudiConfig | None = None,
    large_batch: int = 128,
) -> E2EProfileResult:
    """Profile one model's training step and the OOM boundary."""
    config = config or GaudiConfig()
    rec = record_training_step(model_name)
    profile = SynapseProfiler(config).profile(rec.graph)

    oom = False
    try:
        big = record_training_step(model_name, batch=large_batch)
        SynapseProfiler(config).compile(big.graph)
    except DeviceMemoryError:
        oom = True
    return E2EProfileResult(model_name, profile, oom, large_batch,
                            config=config)


def max_batch_that_fits(
    model_name: str,
    *,
    config: GaudiConfig | None = None,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> int:
    """Largest candidate batch whose memory plan fits HBM.

    The paper's implied sweep: why 8 and not 128.
    """
    config = config or GaudiConfig()
    best = 0
    for batch in candidates:
        try:
            rec = record_training_step(model_name, batch=batch)
            SynapseProfiler(config).compile(rec.graph)
            best = batch
        except DeviceMemoryError:
            break
    return best
