"""First-class sweep harness: scenario grids as data, shared recipes.

PR-4 grew two ad-hoc ``--jobs`` fan-outs — A4's card-count sweep and
A12's bucket sweep each hand-rolled a work list, a
``ProcessPoolExecutor`` and a schedule-JSON transport. This module
generalizes that pattern into one declarative layer:

* a :class:`SweepSpec` declares the scenario grid (model x batch x
  seq x cards x policy) *as data* — either cartesian axes or an
  explicit point list — and expands it to a deterministic ordered
  list of :class:`SweepPoint`\\ s;
* :func:`run_sweep` compiles each distinct workload/options pair
  once in the parent, publishes the recipes through a shared warm
  disk cache (:class:`~repro.synapse.recipe.RecipeCache` with a
  ``save_dir``), and fans point executions out over a process pool —
  workers load recipes by signature instead of recompiling, the way
  SynapseAI replays its on-disk recipe store;
* results stream as one JSON line per point (``stream=``) the moment
  each point completes, so long sweeps are tail-able and a killed
  sweep keeps everything it finished.

The event-driven runtime is deterministic, so a sweep's rows are
byte-identical at any ``jobs`` width. A4 (`run_scaling_study`), A12
(`run_comm_overlap_ablation`), A13 (`run_overlap_scheduler_ablation`)
and A14 (`run_memory_ablation`) are all expressed on this harness;
``python -m repro sweep`` exposes it directly.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..hw.config import GaudiConfig, HLS1Config
from ..hw.device import HLS1Device
from ..synapse import (
    CompilerOptions,
    GraphCompiler,
    SynapseProfiler,
    default_compiler_options,
)
from ..synapse.recipe import RecipeCache, recipe_key
from ..synapse.runtime import HLS1Runtime, Runtime
from ..util.tabulate import render_table

#: named option bundles selectable from ``repro sweep --policy`` — the
#: grid's policy axis as data, not code
SWEEP_POLICIES: dict[str, tuple[tuple[str, Any], ...]] = {
    "default": (),
    "ddp": (("inject_collectives", True),),
    "no-overlap": (("inject_collectives", True), ("comm_overlap", False)),
    "reorder": (("reorder", True), ("scheduler", "reorder")),
    "lookahead": (("reorder", True), ("scheduler", "lookahead")),
    "slicing": (
        ("reorder", True), ("scheduler", "lookahead"),
        ("tpc_slice_ops", True),
    ),
}


@dataclass(frozen=True)
class SweepPoint:
    """One scenario of a sweep: workload geometry x population x policy.

    ``model`` names a workload: a training step (``"gpt"``/``"bert"``,
    see :func:`~repro.core.e2e_llm.record_training_step`) or a single
    layer profile (``"layer:<kind>"`` — softmax/linear/performer, the
    Fig. 4-6 workloads). ``overrides`` is the policy's
    :class:`~repro.synapse.CompilerOptions` delta as an ordered tuple
    of ``(field, value)`` pairs — plain data, picklable, hashable.
    """

    model: str
    batch: int | None = None
    seq_len: int | None = None
    #: cards *per box* (the HLS1Config meaning); the population is
    #: ``cards * boxes``
    cards: int = 1
    policy: str = "default"
    overrides: tuple[tuple[str, Any], ...] = ()
    #: record the training step with activation checkpointing on
    #: (the A14 workloads)
    checkpoint: bool = False
    #: HLS-1 boxes bridged by the Ethernet tier (PR-8 multi-box sweeps)
    boxes: int = 1

    def options(self, base: CompilerOptions) -> CompilerOptions:
        """The point's compiler options: ``base`` + the policy delta."""
        return dataclasses.replace(base, **dict(self.overrides))

    def workload_key(self) -> tuple:
        """What determines the recorded graph (not the options)."""
        return (self.model, self.batch, self.seq_len, self.checkpoint)

    def describe(self) -> dict:
        """The point's identity as JSON-ready scalars (JSONL header)."""
        return {
            "model": self.model,
            "batch": self.batch,
            "seq_len": self.seq_len,
            "cards": self.cards,
            "boxes": self.boxes,
            "policy": self.policy,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A scenario grid declared as data.

    Either give the cartesian axes (``models x batches x seq_lens x
    cards x policies``, expanded in that nesting order) or an explicit
    ``points`` tuple for irregular sweeps (A12's baseline-plus-grid
    shape). ``executor`` picks the measurement:

    * ``"hls1"`` — compile against the HLS-1 card and execute on an
      event-driven :class:`~repro.synapse.runtime.HLS1Runtime`
      population of ``point.cards`` (A4/A12; supports ``jobs``);
    * ``"profile"`` — single-card
      :class:`~repro.synapse.SynapseProfiler` run returning a rich
      :class:`~repro.synapse.ProfileResult` per point (A13/A14;
      in-process only, since profiles do not cross the pool cheaply).
    """

    name: str
    models: tuple[str, ...] = ("gpt",)
    batches: tuple[int | None, ...] = (None,)
    seq_lens: tuple[int | None, ...] = (None,)
    cards: tuple[int, ...] = (1,)
    boxes: tuple[int, ...] = (1,)
    policies: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...] = (
        ("default", ()),
    )
    checkpoint: bool = False
    executor: str = "hls1"
    points: tuple[SweepPoint, ...] | None = None
    #: attention-kernel axis (``attention_lowering`` values): each
    #: policy is crossed with every kernel, labelled ``policy+kernel``;
    #: empty keeps the compile default (no override, no label suffix)
    attention: tuple[str, ...] = ()
    #: hardware-backend axis (``CompilerOptions.backend`` values):
    #: each policy/kernel cell is crossed with every named backend,
    #: labelled ``policy@backend``; empty keeps the compile default
    #: (gaudi, no label suffix). Non-Gaudi backends model a single
    #: device, so their points must keep ``cards == boxes == 1``.
    backend: tuple[str, ...] = ()

    def expand(self) -> list[SweepPoint]:
        """The grid as an ordered point list (explicit points win)."""
        if self.points is not None:
            return list(self.points)
        kernels: tuple[str | None, ...] = self.attention or (None,)
        backends: tuple[str | None, ...] = self.backend or (None,)
        out = []
        for model in self.models:
            for batch in self.batches:
                for seq_len in self.seq_lens:
                    for cards in self.cards:
                        for boxes in self.boxes:
                            for policy, overrides in self.policies:
                                for kernel in kernels:
                                    label = policy
                                    if kernel is not None:
                                        label = f"{policy}+{kernel}"
                                        overrides_k = overrides + (
                                            ("attention_lowering", kernel),
                                        )
                                    else:
                                        overrides_k = overrides
                                    for backend in backends:
                                        label_b = label
                                        overrides_b = overrides_k
                                        if backend is not None:
                                            label_b = f"{label}@{backend}"
                                            overrides_b = overrides_k + (
                                                ("backend", backend),
                                            )
                                        if (backend not in (None, "gaudi")
                                                and cards * boxes > 1):
                                            raise ValueError(
                                                f"backend {backend!r} "
                                                "models a single device; "
                                                f"cards={cards} x boxes="
                                                f"{boxes} needs gaudi"
                                            )
                                        out.append(SweepPoint(
                                            model=model, batch=batch,
                                            seq_len=seq_len, cards=cards,
                                            boxes=boxes, policy=label_b,
                                            overrides=overrides_b,
                                            checkpoint=self.checkpoint,
                                        ))
        return out


@dataclass
class PointResult:
    """One executed sweep point: identity + flat numeric metrics.

    ``metrics`` is JSON-ready (it is the JSONL line's payload);
    ``profile`` carries the full ProfileResult for ``executor=
    "profile"`` sweeps run in-process, and is never serialized.
    """

    point: SweepPoint
    metrics: dict
    profile: Any = None

    def to_json(self, sweep_name: str) -> dict:
        """The point's JSONL record: sweep name, identity, metrics."""
        return {"sweep": sweep_name, **self.point.describe(),
                **self.metrics}


@dataclass
class SweepResult:
    """Every point of one sweep, in spec order."""

    spec: SweepSpec
    results: list[PointResult] = field(default_factory=list)

    def result_for(self, **attrs) -> PointResult:
        """The first point whose identity matches all ``attrs``."""
        for r in self.results:
            if all(getattr(r.point, k) == v for k, v in attrs.items()):
                return r
        raise KeyError(f"no sweep point matching {attrs}")

    def render(self) -> str:
        """A human table of the streamed metrics."""
        rows = []
        for r in self.results:
            rows.append((
                r.point.model,
                r.point.batch if r.point.batch is not None else "-",
                r.point.seq_len if r.point.seq_len is not None else "-",
                r.point.cards,
                r.point.boxes,
                r.point.policy,
                f"{r.metrics['total_time_us'] / 1000.0:.2f}",
                f"{r.metrics.get('exposed_comm_us', 0.0) / 1000.0:.2f}",
                r.metrics.get("compile", "-"),
            ))
        return render_table(
            ["model", "batch", "seq", "cards", "boxes", "policy",
             "total (ms)", "exposed comm (ms)", "recipe"],
            rows,
            title=f"sweep {self.spec.name!r} "
                  f"({len(self.results)} point(s))",
        )


# -- workload recording ------------------------------------------------------


def _workload_graph(point: SweepPoint):
    """Record the point's graph (training step or single layer)."""
    if point.model.startswith("layer:"):
        from .. import ht
        from ..models import TransformerLayer, paper_layer_config
        from .reference import LAYER_STUDY_SHAPES

        kind = point.model.split(":", 1)[1]
        batch = point.batch or LAYER_STUDY_SHAPES["batch"]
        seq_len = point.seq_len or LAYER_STUDY_SHAPES["seq_len"]
        layer_cfg = paper_layer_config(kind)
        layer = TransformerLayer(layer_cfg, materialize=False)
        with ht.record(f"layer-{kind}-elu1", mode="symbolic") as rec:
            layer(ht.input_tensor(
                (batch, seq_len, layer_cfg.d_model), name="x",
            ))
        return rec.graph
    from .e2e_llm import record_training_step

    kwargs: dict = {"checkpoint": point.checkpoint}
    if point.batch is not None:
        kwargs["batch"] = point.batch
    if point.seq_len is not None:
        kwargs["seq_len"] = point.seq_len
    return record_training_step(point.model, **kwargs).graph


# -- executors ---------------------------------------------------------------


def _hls1_metrics(
    schedule, hls1: HLS1Config, cards: int, boxes: int = 1,
    backend: str = "gaudi",
) -> dict:
    """Execute one schedule on ``boxes`` boxes of ``cards`` cards.

    A non-Gaudi ``backend`` has no multi-card system model: its points
    (already validated to ``cards == boxes == 1``) execute on that
    backend's single device instead of the HLS-1 population.
    """
    if backend != "gaudi":
        from ..hw.backend import get_backend

        b = get_backend(backend)
        res = Runtime(b.make_device(b.default_config())).execute(schedule)
    else:
        system = HLS1Device(
            dataclasses.replace(hls1, num_cards=cards, boxes=boxes)
        )
        res = HLS1Runtime(system).execute(schedule)
    metrics = {
        "total_time_us": res.total_time_us,
        "exposed_comm_us": res.exposed_comm_us,
        "fabric_busy_us": res.fabric_busy_us,
        "gradient_bytes": int(schedule.stats.get("gradient_bytes", 0)),
        "all_reduce_ops": sum(
            1 for op in schedule.ops if op.src == "all_reduce"
        ),
    }
    reuse = schedule.stats.get("incremental")
    if reuse:
        metrics["passes_reused"] = reuse["reused"]
        metrics["passes_recomputed"] = reuse["recomputed"]
    return metrics


def _sweep_worker(payload) -> dict:
    """Process-pool worker for ``executor="hls1"`` points.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it. The parent already compiled and published every
    distinct recipe to the shared ``recipe_dir``, so the signature
    lookup is a warm disk hit and the worker never re-runs the
    compiler; if the blob is missing anyway (cold cache, eviction,
    ``use_recipe_cache=False``) the worker records and compiles the
    point itself — correct either way, because the runtime is
    deterministic.
    """
    point, hls1, options, recipe_dir, key = payload
    cache = RecipeCache(save_dir=recipe_dir)
    schedule = cache.get(key) if recipe_dir and key else None
    source = "disk" if schedule is not None else "cold"
    if schedule is None:
        compiler = GraphCompiler(hls1.card, options, cache=cache)
        schedule = compiler.compile(_workload_graph(point))
        if compiler.last_cache_hit:
            source = "disk" if cache.disk_hits else "memory"
    metrics = _hls1_metrics(
        schedule, hls1, point.cards, point.boxes,
        backend=getattr(options, "backend", "gaudi"),
    )
    metrics["compile"] = source
    return metrics


def _profile_point(
    point: SweepPoint,
    config: GaudiConfig,
    options: CompilerOptions,
    graphs: dict,
) -> PointResult:
    """Single-card profile executor (A13/A14): rich results kept."""
    if point.model.startswith("layer:"):
        from .attention_study import profile_layer

        prof = profile_layer(
            point.model.split(":", 1)[1], config=config, options=options,
            batch=point.batch, seq_len=point.seq_len,
        )
    else:
        wkey = point.workload_key()
        if wkey not in graphs:
            graphs[wkey] = _workload_graph(point)
        prof = SynapseProfiler(config, options).profile(graphs[wkey])
    metrics = {
        "total_time_us": prof.total_time_us,
        "peak_bytes": prof.schedule.memory.peak_bytes,
        "compile": "memory" if prof.cache_hit else "cold",
    }
    mem = prof.schedule.stats.get("memory")
    if mem:
        metrics.update(
            spill_ops=mem["spill_ops"], spill_bytes=mem["spill_bytes"],
            recompute_ops=mem["recompute_ops"],
            recompute_bytes=mem["recompute_bytes"],
        )
    return PointResult(point=point, metrics=metrics, profile=prof)


# -- the harness -------------------------------------------------------------


def _emit(stream, spec: SweepSpec, result: PointResult) -> None:
    stream.write(json.dumps(result.to_json(spec.name)) + "\n")
    stream.flush()


def run_sweep(
    spec: SweepSpec,
    *,
    hls1: HLS1Config | None = None,
    config: GaudiConfig | None = None,
    options: CompilerOptions | None = None,
    jobs: int = 1,
    stream=None,
    recipe_dir: "str | Path | None" = None,
    graphs: dict | None = None,
) -> SweepResult:
    """Execute every point of ``spec``, streaming JSONL as they land.

    ``options`` is the base every point's policy overrides apply to
    (default: the process-wide compiler options). ``stream`` is a
    writable text file (or a path) receiving one JSON line per
    completed point. ``jobs > 1`` fans ``executor="hls1"`` points over
    a process pool: the parent compiles each distinct workload/options
    pair once, publishes the recipes into ``recipe_dir`` (a shared
    temporary directory when not given), and workers replay them from
    disk by signature — no worker recompiles a warm point. ``graphs``
    optionally seeds/shares the recorded-graph memo across sweeps
    (A14 records each workload once for its oracle and planned runs).
    Points run and stream in spec order at any width.
    """
    hls1 = hls1 or HLS1Config()
    base = options if options is not None else default_compiler_options()
    points = spec.expand()
    if not points:
        raise ValueError(f"sweep {spec.name!r} declares no points")
    graphs = graphs if graphs is not None else {}

    opened = None
    if isinstance(stream, (str, Path)):
        opened = stream = open(stream, "w")
    try:
        if spec.executor == "profile":
            result = SweepResult(spec=spec)
            cfg = config or GaudiConfig()
            for point in points:
                pr = _profile_point(
                    point, cfg, point.options(base), graphs
                )
                if stream is not None:
                    _emit(stream, spec, pr)
                result.results.append(pr)
            return result
        if spec.executor != "hls1":
            raise ValueError(f"unknown sweep executor {spec.executor!r}")

        if jobs > 1:
            return _run_hls1_pool(
                spec, points, hls1, base, jobs, stream, recipe_dir, graphs
            )

        # serial: one shared in-memory recipe cache across the sweep,
        # so repeated (workload, options) points compile exactly once
        cache = RecipeCache(
            maxsize=max(32, len(points)), save_dir=recipe_dir
        )
        result = SweepResult(spec=spec)
        for point in points:
            opts = point.options(base)
            wkey = point.workload_key()
            if wkey not in graphs:
                graphs[wkey] = _workload_graph(point)
            disk_before = cache.disk_hits
            compiler = GraphCompiler(hls1.card, opts, cache=cache)
            schedule = compiler.compile(graphs[wkey])
            source = "cold"
            if compiler.last_cache_hit:
                source = (
                    "disk" if cache.disk_hits > disk_before else "memory"
                )
            metrics = _hls1_metrics(
                schedule, hls1, point.cards, point.boxes,
                backend=getattr(opts, "backend", "gaudi"),
            )
            metrics["compile"] = source
            pr = PointResult(point=point, metrics=metrics)
            if stream is not None:
                _emit(stream, spec, pr)
            result.results.append(pr)
        return result
    finally:
        if opened is not None:
            opened.close()


def _run_hls1_pool(
    spec, points, hls1, base, jobs, stream, recipe_dir, graphs
) -> SweepResult:
    """The fan-out path: parent-warmed disk recipes, pooled workers."""
    from concurrent.futures import ProcessPoolExecutor

    tmp = None
    if recipe_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        recipe_dir = tmp.name
    try:
        # warm the shared disk cache: one compile per distinct
        # workload/options pair, published by signature
        from ..hw.backend import get_backend

        cache = RecipeCache(
            maxsize=max(32, len(points)), save_dir=recipe_dir
        )
        keys: dict[SweepPoint, str | None] = {}
        compiled: set[str] = set()
        for point in points:
            opts = point.options(base)
            if not opts.use_recipe_cache:
                keys[point] = None  # the worker compiles this one
                continue
            wkey = point.workload_key()
            if wkey not in graphs:
                graphs[wkey] = _workload_graph(point)
            # key with the backend-coerced config, exactly as the
            # compiler will, so warmed recipes hit in the workers
            coerced = get_backend(
                getattr(opts, "backend", "gaudi")
            ).coerce_config(hls1.card)
            key = recipe_key(graphs[wkey], coerced, opts)
            keys[point] = key
            if key not in compiled:
                GraphCompiler(
                    hls1.card, opts, cache=cache
                ).compile(graphs[wkey])
                compiled.add(key)

        payloads = [
            (p, hls1, p.options(base), str(recipe_dir), keys[p])
            for p in points
        ]
        result = SweepResult(spec=spec)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # pool.map yields in submission order: the stream stays
            # in spec order at any width
            for point, metrics in zip(
                points, pool.map(_sweep_worker, payloads)
            ):
                pr = PointResult(point=point, metrics=metrics)
                if stream is not None:
                    _emit(stream, spec, pr)
                result.results.append(pr)
        return result
    finally:
        if tmp is not None:
            tmp.cleanup()


def _auto_layout_points(
    models: tuple[str, ...],
    batches: tuple[int | None, ...],
    seq_lens: tuple[int | None, ...],
    cards: tuple[int, ...],
    boxes: tuple[int, ...],
) -> tuple[SweepPoint, ...]:
    """One planner-picked point per (model, geometry, population).

    Each population is handed to :func:`~repro.core.auto_layout.
    auto_layout`, which exhaustively prices the (tp, pp, dp) grid on
    the two-tier fabric; the winning layout becomes the point's
    compiler-option overrides and its policy label
    (``auto:tp4·pp1·dp8``).
    """
    from .auto_layout import LayoutPlanner, auto_layout

    points: list[SweepPoint] = []
    for model in models:
        for batch in batches:
            for seq_len in seq_lens:
                planner_kwargs: dict[str, Any] = {}
                if batch is not None:
                    planner_kwargs["batch"] = batch
                if seq_len is not None:
                    planner_kwargs["seq_len"] = seq_len
                for per_box in cards:
                    planner = LayoutPlanner(
                        model, cards_per_box=per_box, **planner_kwargs
                    )
                    for n_boxes in boxes:
                        verdict = auto_layout(
                            model, per_box * n_boxes, planner=planner
                        )
                        layout = verdict.best.layout
                        overrides = SWEEP_POLICIES["ddp"] + (
                            ("bucket_mb", layout.bucket_mb),
                            ("tp", layout.tp),
                            ("pp", layout.pp),
                            ("microbatches", layout.microbatches),
                        )
                        points.append(SweepPoint(
                            model=model, batch=batch, seq_len=seq_len,
                            cards=per_box, boxes=n_boxes,
                            policy=f"auto:{layout.describe()}",
                            overrides=overrides,
                        ))
    return tuple(points)


def sweep_spec_from_cli(
    models: Iterable[str],
    batches: Iterable[int],
    seq_lens: Iterable[int],
    cards: Iterable[int],
    policies: Iterable[str],
    *,
    boxes: Iterable[int] = (),
    tp: int = 1,
    pp: int = 1,
    auto_layout: bool = False,
    attention: Iterable[str] = (),
    backend: Iterable[str] = (),
) -> SweepSpec:
    """Build the ``repro sweep`` grid from repeatable CLI flags.

    ``boxes`` adds the multi-box axis (cards stay *per box*); ``tp`` /
    ``pp`` shard every policy's compile with the tensor-parallel and
    pipeline-partition passes (``pp`` pins ``microbatches = pp``, the
    minimum legal fill); ``--auto-layout`` instead asks the
    auto-parallelism planner to pick ``(tp, pp, dp)`` per population
    and replaces the policy axis with the planner's verdicts;
    ``attention`` (``--attention-kernel``) adds the attention-lowering
    axis, crossing every policy with each named kernel; ``backend``
    (``--backend``) adds the hardware-backend axis (gaudi/wse) —
    non-Gaudi backends are single-device, so they require the default
    ``cards == boxes == 1`` population.
    """
    from ..hw.backend import get_backend
    from ..synapse.passes.attention import ATTENTION_LOWERINGS

    unknown = [p for p in policies if p not in SWEEP_POLICIES]
    if unknown:
        known = ", ".join(sorted(SWEEP_POLICIES))
        raise ValueError(
            f"unknown sweep policy {unknown[0]!r} (known: {known})"
        )
    attention_t = tuple(attention)
    bad = [a for a in attention_t if a not in ATTENTION_LOWERINGS]
    if bad:
        raise ValueError(
            f"unknown attention kernel {bad[0]!r} (known: "
            f"{', '.join(ATTENTION_LOWERINGS)})"
        )
    backend_t = tuple(backend)
    for name in backend_t:
        get_backend(name)  # raises ConfigError on unknown backends
    if tp < 1 or pp < 1:
        raise ValueError(f"tp/pp must be >= 1, got tp={tp} pp={pp}")
    if auto_layout and (tp > 1 or pp > 1):
        raise ValueError("--auto-layout already picks tp/pp; drop "
                         "the explicit --tp/--pp flags")
    if auto_layout and attention_t:
        raise ValueError("--auto-layout replaces the policy axis; it "
                         "cannot be crossed with --attention-kernel")
    if auto_layout and any(b != "gaudi" for b in backend_t):
        raise ValueError("--auto-layout plans HLS-1 populations; the "
                         "backend axis must stay gaudi")
    models_t = tuple(models) or ("gpt",)
    batches_t = tuple(batches) or (None,)
    seq_lens_t = tuple(seq_lens) or (None,)
    cards_t = tuple(cards) or (1,)
    boxes_t = tuple(boxes) or (1,)
    if auto_layout:
        return SweepSpec(
            name="cli",
            points=_auto_layout_points(
                models_t, batches_t, seq_lens_t, cards_t, boxes_t
            ),
        )
    shard: tuple[tuple[str, Any], ...] = ()
    suffix = ""
    if tp > 1:
        shard += (("tp", tp),)
        suffix += f"+tp{tp}"
    if pp > 1:
        shard += (("pp", pp), ("microbatches", pp))
        suffix += f"+pp{pp}"
    named = tuple(
        (p + suffix, SWEEP_POLICIES[p] + shard) for p in policies
    ) or ((f"default{suffix}", shard),)
    return SweepSpec(
        name="cli",
        models=models_t,
        batches=batches_t,
        seq_lens=seq_lens_t,
        cards=cards_t,
        boxes=boxes_t,
        policies=named,
        attention=attention_t,
        backend=backend_t,
    )
