"""Extension A8: energy per attention variant (nominal constants).

Attaches the :mod:`repro.hw.energy` model to the §3.3 layer study and
asks the efficiency question the paper's introduction raises: how many
joules does each attention variant burn for the same work? Linearized
attention wins twice — less time (so less static energy) *and* fewer
TPC pJ/FLOP — and the O(N^2) attention matrix makes softmax attention
HBM-dominated on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import ht
from ..hw.config import GaudiConfig
from ..hw.energy import EnergyBreakdown, EnergyConfig, schedule_energy
from ..models import TransformerLayer, paper_layer_config
from ..synapse import SynapseProfiler
from ..util.tabulate import render_table
from .reference import LAYER_STUDY_SHAPES, ShapeCheck, threshold_check

VARIANTS = ("softmax", "linear", "performer", "pipelined")


@dataclass
class EnergyStudyResult:
    """Per-variant energy of the Fig 4-6 layer."""

    variants: list[str]
    breakdowns: dict[str, EnergyBreakdown] = field(default_factory=dict)
    times_ms: dict[str, float] = field(default_factory=dict)
    tokens: int = LAYER_STUDY_SHAPES["batch"] * LAYER_STUDY_SHAPES["seq_len"]

    def joules(self, variant: str) -> float:
        """Total joules of one variant's layer pass."""
        return self.breakdowns[variant].total_joules

    def joules_per_token(self, variant: str) -> float:
        """Energy per token processed."""
        return self.joules(variant) / self.tokens

    def checks(self) -> list[ShapeCheck]:
        """Efficiency claims of the extension."""
        ratio = self.joules("softmax") / self.joules("linear")
        return [
            threshold_check(
                "ext-energy: linear attention saves energy vs softmax",
                ratio, 1.5,
            ),
            ShapeCheck(
                "ext-energy: pipelined saves static energy vs softmax",
                self.joules("pipelined") < self.joules("softmax"),
                f"{self.joules('pipelined'):.2f} J vs "
                f"{self.joules('softmax'):.2f} J",
                "pipelined < softmax (same math, less makespan)",
            ),
            threshold_check(
                "ext-energy: softmax's O(N^2) matrix costs HBM energy "
                "(softmax/linear HBM ratio)",
                self.breakdowns["softmax"].hbm_joules
                / self.breakdowns["linear"].hbm_joules,
                4.0,
            ),
            ShapeCheck(
                "ext-energy: idle (static) power dominates the softmax "
                "layer — the idling MME still burns watts",
                self.breakdowns["softmax"].static_joules
                > 0.5 * self.joules("softmax"),
                f"static {self.breakdowns['softmax'].static_joules:.1f} J "
                f"of {self.joules('softmax'):.1f} J",
                "> 50% of total",
            ),
        ]

    def render(self) -> str:
        """Per-variant energy table."""
        rows = []
        for v in self.variants:
            b = self.breakdowns[v]
            rows.append((
                v,
                self.times_ms[v],
                b.total_joules,
                1e3 * self.joules_per_token(v),
                b.mme_joules, b.tpc_joules, b.hbm_joules,
                b.static_joules,
            ))
        return render_table(
            ["variant", "time (ms)", "J total", "mJ/token", "J mme",
             "J tpc", "J hbm", "J static"],
            rows,
            title="A8: energy per attention variant (nominal constants)",
        )


def run_energy_study(
    config: GaudiConfig | None = None,
    energy: EnergyConfig | None = None,
) -> EnergyStudyResult:
    """Profile every variant and attach the energy model."""
    config = config or GaudiConfig()
    shapes = LAYER_STUDY_SHAPES
    result = EnergyStudyResult(list(VARIANTS))
    for variant in VARIANTS:
        layer_cfg = paper_layer_config(variant, chunk_size=256)
        layer = TransformerLayer(layer_cfg, materialize=False)
        with ht.record(f"energy-{variant}", mode="symbolic") as rec:
            layer(ht.input_tensor(
                (shapes["batch"], shapes["seq_len"], layer_cfg.d_model)
            ))
        profile = SynapseProfiler(config).profile(rec.graph)
        result.times_ms[variant] = profile.total_time_ms
        result.breakdowns[variant] = schedule_energy(
            profile.schedule, profile.total_time_us, energy,
        )
    return result
