"""A13: engine-aware overlap — TPC op slicing + lookahead scheduling.

The Fig. 4 softmax layer leaves the MME idle for ~50% of the step: the
QK^T scores are produced, then the matrix engine parks while the TPC
grinds through one monolithic softmax, then the scores@V matmul runs
(§3.3). Neither issue reordering alone nor a smarter priority function
can fix that — the softmax is a single serial dependency between two
matmuls. The ``tpc_slicing`` compiler pass splits the scale/softmax
chain into row slices so score@V slices start as soon as their slice
normalizes, and the ``lookahead`` scheduler orders the slice soup so
the op that unblocks the MME soonest runs first.

This ablation measures the gap closure (Fig. 4 -> Fig. 5-style
overlap) across four configurations per workload:

* in-order (SynapseAI's discipline, the Fig. 4 baseline),
* reorder — the greedy earliest-ready list scheduler (A1's policy),
* lookahead — critical-path priorities + MME-starvation boost,
* lookahead + slicing — the full overlap machinery.

It also re-verifies, on a concrete layer, that the sliced graph is
numerically byte-identical to the unsliced reference and that the
slice-reassembly lint rule finds nothing to flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import ht
from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..models import TransformerLayer, paper_layer_config
from ..synapse import (
    CompilerOptions,
    GraphCompiler,
    ProfileResult,
    execute_schedule,
    lint_graph,
)
from ..synapse.trace import _merge_intervals, _overlap_us
from ..util.tabulate import render_table
from .reference import ShapeCheck, threshold_check

#: acceptance bar — MME idle with lookahead + slicing vs the reorder
#: baseline on the Fig. 4 softmax layer (ISSUE criterion: >= 25%
#: reduction; the measured reduction is ~69%)
MME_IDLE_RATIO_MAX = 0.75

#: the Performer q'/k' serialization gap must be gone under lookahead
#: (<= 5% of the greedy baseline's exposure; measured exactly 0)
EXP_EXPOSURE_RATIO_MAX = 0.05

#: the four (label, CompilerOptions kwargs) configurations per workload
CONFIGS: tuple[tuple[str, dict], ...] = (
    ("in-order", dict(reorder=False)),
    ("reorder", dict(reorder=True, scheduler="reorder")),
    ("lookahead", dict(reorder=True, scheduler="lookahead")),
    ("lookahead+slicing",
     dict(reorder=True, scheduler="lookahead", tpc_slice_ops=True)),
)


def exposed_tpc_us(result: ProfileResult, marker: str) -> float:
    """TPC busy time on ops matching ``marker`` not hidden under MME
    compute — the "MME blank while the TPC grinds" of Figs. 4/6."""
    events = result.timeline.events
    tpc = _merge_intervals([
        (e.start_us, e.end_us) for e in events
        if e.engine is EngineKind.TPC and marker in e.name
    ])
    mme = _merge_intervals([
        (e.start_us, e.end_us) for e in events
        if e.engine is EngineKind.MME
    ])
    return sum(b - a for a, b in tpc) - _overlap_us(tpc, mme)


@dataclass
class OverlapStudyResult:
    """A13's measurements: per-workload scheduler/slicing grid."""

    #: workload kind -> config label -> profile
    profiles: dict[str, dict[str, ProfileResult]] = field(
        default_factory=dict
    )
    #: sliced-vs-eager numerics agreement on the concrete check layer
    numerics_identical: bool = False
    #: slice-reassembly lint findings on the sliced check graph
    lint_findings: int = 0

    def mme_idle_us(self, kind: str, label: str) -> float:
        """MME idle up to the last compute (DMA drain excluded)."""
        return self.profiles[kind][label].idle_us(
            EngineKind.MME, until="last_compute"
        )

    @property
    def idle_reduction(self) -> float:
        """Fractional MME-idle reduction, lookahead+slicing vs the
        reorder baseline, on the Fig. 4 softmax layer."""
        base = self.mme_idle_us("softmax", "reorder")
        if base <= 0:
            return 0.0
        return 1.0 - self.mme_idle_us("softmax", "lookahead+slicing") / base

    def checks(self) -> list[ShapeCheck]:
        """A13's acceptance criteria."""
        softmax_ratio = (
            self.mme_idle_us("softmax", "lookahead+slicing")
            / max(self.mme_idle_us("softmax", "reorder"), 1e-9)
        )
        exp_base = exposed_tpc_us(
            self.profiles["performer"]["reorder"], "exp"
        )
        exp_ratio = (
            exposed_tpc_us(self.profiles["performer"]["lookahead"], "exp")
            / max(exp_base, 1e-9)
        )
        sliced = self.profiles["softmax"]["lookahead+slicing"]
        return [
            threshold_check(
                "A13: softmax MME idle, lookahead+slicing vs reorder",
                softmax_ratio, MME_IDLE_RATIO_MAX, upper=True,
            ),
            threshold_check(
                "A13: performer q'/k' exp exposure vs reorder",
                exp_ratio, EXP_EXPOSURE_RATIO_MAX, upper=True,
            ),
            threshold_check(
                "A13: slicing pass engaged on the softmax layer",
                float(sliced.overlap_stats.get("slices_created", 0)), 1.0,
            ),
            ShapeCheck(
                "A13: sliced graph numerics byte-identical to eager",
                self.numerics_identical, str(self.numerics_identical),
                "True",
            ),
            ShapeCheck(
                "A13: slice-reassembly lint clean",
                self.lint_findings == 0,
                f"{self.lint_findings} finding(s)", "0 findings",
            ),
        ]

    def render(self) -> str:
        """Per-workload scheduler/slicing comparison tables."""
        parts = []
        for kind, by_label in self.profiles.items():
            rows = []
            for label, prof in by_label.items():
                idle = self.mme_idle_us(kind, label)
                stats = prof.overlap_stats
                rows.append((
                    label,
                    f"{prof.total_time_ms:.2f}",
                    f"{idle / 1000.0:.2f}",
                    f"{prof.idle_fraction(EngineKind.MME, until='last_compute'):.1%}",
                    stats.get("slices_created", 0),
                ))
            parts.append(render_table(
                ["schedule", "total (ms)", "MME idle (ms)",
                 "MME idle frac", "slices"],
                rows,
                title=f"A13: overlap scheduling ({kind} attention)",
            ))
        parts.append(
            f"softmax MME-idle reduction (lookahead+slicing vs reorder): "
            f"{self.idle_reduction:.1%}"
        )
        return "\n".join(parts)


def _check_sliced_numerics() -> tuple[bool, int]:
    """Compile a small concrete attention block with slicing forced on
    (``tpc_slice_min_us=0``), and verify (a) the functional executor
    reproduces the eager frontend bit for bit, (b) the slice-reassembly
    lint rule is clean on the sliced graph."""
    rng = np.random.default_rng(1234)
    q_np = rng.normal(size=(4, 16, 8)).astype(np.float32)
    k_np = rng.normal(size=(4, 8, 16)).astype(np.float32)
    v_np = rng.normal(size=(4, 16, 8)).astype(np.float32)
    from ..ht import functional as F

    with ht.record("a13-numerics", mode="concrete") as rec:
        q = ht.tensor(q_np, name="q")
        k = ht.tensor(k_np, name="k")
        v = ht.tensor(v_np, name="v")
        scores = F.mul_scalar(F.matmul(q, k), 0.125)
        probs = F.softmax(scores, axis=-1)
        out = F.matmul(probs, v)
        eager = out.numpy()

    options = CompilerOptions(tpc_slice_ops=True, tpc_slice_min_us=0.0)
    schedule = GraphCompiler(options=options).compile(rec.graph)
    if not schedule.stats.get("overlap", {}).get("slices_created"):
        return False, 0  # the pass must actually engage for the check
    env = execute_schedule(
        schedule, {"q": q_np, "k": k_np, "v": v_np}
    )
    # the slicing rewriter renumbers values — compare the *sliced*
    # graph's terminal output against the eager reference
    out_vid = schedule.graph.nodes[-1].output
    identical = bool(np.array_equal(env[out_vid], eager))
    findings = [
        w for w in lint_graph(schedule.graph)
        if w.rule == "slice-reassembly"
    ]
    return identical, len(findings)


def run_overlap_scheduler_ablation(
    config: GaudiConfig | None = None,
) -> OverlapStudyResult:
    """Profile the Fig. 4 softmax and Fig. 6 Performer layers under
    every scheduler/slicing configuration.

    The grid — layer workloads crossed with :data:`CONFIGS` — is a
    ``profile``-executor :class:`~repro.core.sweep.SweepSpec`; each
    point's rich :class:`~repro.synapse.ProfileResult` lands in
    ``profiles`` keyed exactly as before.
    """
    from .sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        name="a13-overlap-scheduler",
        models=("layer:softmax", "layer:performer"),
        policies=tuple(
            (label, tuple(kwargs.items())) for label, kwargs in CONFIGS
        ),
        executor="profile",
    )
    sweep = run_sweep(spec, config=config, options=CompilerOptions())
    result = OverlapStudyResult()
    for point in sweep.results:
        kind = point.point.model.split(":", 1)[1]
        result.profiles.setdefault(kind, {})[point.point.policy] = (
            point.profile
        )
    result.numerics_identical, result.lint_findings = (
        _check_sliced_numerics()
    )
    return result
