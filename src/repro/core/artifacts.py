"""Artifact export: write profiles and study reports to disk.

Every profiled experiment can leave behind the same artifacts a real
SynapseAI profiling session does: a chrome://tracing JSON (open in
Perfetto), the ASCII figure, the summary, and the HBM occupancy curve.
``save_study`` dumps the whole reproduction into a directory tree that
can be attached to a paper-reproduction report.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..hw.costmodel import EngineKind
from ..synapse import ProfileResult, ascii_timeline, gap_report
from ..synapse.memtrace import memory_timeline
from ..util.errors import ReproError
from .insights import describe_insights
from .study import StudyReport


def save_profile(profile: ProfileResult, directory: "str | Path") -> list[Path]:
    """Write one profile's artifacts; returns the created paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = profile.graph_name.replace("/", "_")
    written: list[Path] = []

    chrome = directory / f"{stem}.trace.json"
    chrome.write_text(profile.timeline.to_chrome_trace())
    written.append(chrome)

    figure = directory / f"{stem}.figure.txt"
    figure.write_text(
        "\n".join([
            f"profile {profile.graph_name!r}: "
            f"{profile.total_time_ms:.2f} ms",
            ascii_timeline(profile.timeline, width=110),
            "",
            describe_insights(profile.timeline),
            "",
            gap_report(profile.timeline, EngineKind.MME, min_dur_us=50.0),
        ]) + "\n"
    )
    written.append(figure)

    summary = directory / f"{stem}.summary.txt"
    summary.write_text(profile.summary() + "\n")
    written.append(summary)

    memory = directory / f"{stem}.memory.txt"
    mem_tl = memory_timeline(profile.schedule)
    memory.write_text(mem_tl.sparkline(width=110) + "\n")
    written.append(memory)

    metrics = directory / f"{stem}.metrics.json"
    metrics.write_text(json.dumps({
        "graph": profile.graph_name,
        "total_time_ms": profile.total_time_ms,
        "mme_utilization": profile.utilization(EngineKind.MME),
        "tpc_utilization": profile.utilization(EngineKind.TPC),
        "dma_utilization": profile.utilization(EngineKind.DMA),
        "softmax_tpc_share": profile.softmax_tpc_share,
        "peak_hbm_bytes": profile.peak_hbm_bytes,
        "scheduled_ops": len(profile.schedule),
    }, indent=2) + "\n")
    written.append(metrics)
    return written


def save_study(report: StudyReport, directory: "str | Path") -> Path:
    """Write the full study report + machine-readable check results."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if not report.sections:
        raise ReproError("study report is empty — run the study first")

    report_path = directory / "report.txt"
    report_path.write_text(report.render() + "\n")

    checks_path = directory / "checks.json"
    checks_path.write_text(json.dumps([
        {
            "name": c.name,
            "passed": c.passed,
            "measured": c.measured,
            "expected": c.expected,
        }
        for c in report.checks
    ], indent=2) + "\n")
    return report_path
