"""The paper's published numbers, as structured data.

Every experiment compares its measurement against these references and
reports *shape* agreement (who wins, by what factor, where the
bottleneck sits) rather than absolute-time equality — our substrate is
a calibrated simulator, not the authors' HLS-1 (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

# -- Table 1: operation -> engine mapping -------------------------------------

#: the paper's probe set (torch-level op, our op name, expected engine)
TABLE1_ROWS: list[tuple[str, str, str]] = [
    ("torch.mul", "mul", "TPC"),
    ("torch.matmul", "matmul", "MME"),
    ("torch.square", "square", "TPC"),
    ("** (tensor power)", "spow", "TPC"),
    ("tensor + tensor", "add", "TPC"),
    ("tensor - tensor", "sub", "TPC"),
    ("scalar * tensor", "smul", "TPC"),
    ("scalar + tensor", "sadd", "TPC"),
    ("torch.sqrt", "sqrt", "TPC"),
    ("torch.log", "log", "TPC"),
]

# -- Table 2: MME vs TPC batched matmul ----------------------------------------

@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2 (batch 64, square matrices)."""

    size: int
    t_mme_ms: float
    f_mme_tflops: float
    t_tpc_ms: float
    f_tpc_tflops: float
    speedup: float


TABLE2: list[Table2Row] = [
    Table2Row(128, 7.31, 2.35, 9.21, 1.86, 1.3),
    Table2Row(256, 11.78, 11.67, 67.04, 2.05, 5.7),
    Table2Row(512, 76.51, 14.37, 516.60, 2.13, 6.7),
    Table2Row(1024, 151.03, 14.56, 1006.30, 2.18, 6.7),
    Table2Row(2048, 338.27, 14.59, 2247.80, 2.19, 6.6),
]

# -- §3.3 layer studies (Figs 4-7) ----------------------------------------------

#: workload shapes of the layer studies: seq, batch, heads, head_dim
LAYER_STUDY_SHAPES = {"seq_len": 2048, "batch": 128, "heads": 6, "head_dim": 64}

#: Fig 4: softmax share of TPC busy time exceeds this
FIG4_SOFTMAX_TPC_SHARE_MIN = 0.80

#: Figs 5/6: total run time and speedup over softmax attention
FIG5_LINEAR_TOTAL_MS = 30.0
FIG5_LINEAR_SPEEDUP = 6.0
FIG6_PERFORMER_TOTAL_MS = 80.0
FIG6_PERFORMER_SPEEDUP = 2.0

#: Fig 7: total run time per feature-map activation (ms)
FIG7_ACTIVATION_MS = {
    "relu": 30.1,
    "leaky_relu": 30.2,
    "gelu": 29.7,
    "glu": 32.6,
}

# -- §3.4 end-to-end models (Figs 8/9) --------------------------------------------

#: workload shapes: seq, batch, layers, heads, head_dim
E2E_SHAPES = {"seq_len": 2048, "batch": 8, "layers": 2, "heads": 8,
              "head_dim": 64}

# -- band helpers ------------------------------------------------------------------


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim checked against the simulation."""

    name: str
    passed: bool
    measured: str
    expected: str

    def __str__(self) -> str:
        flag = "PASS" if self.passed else "MISS"
        return f"[{flag}] {self.name}: measured {self.measured}, paper {self.expected}"


def within_band(measured: float, reference: float, rel: float) -> bool:
    """|measured - reference| <= rel * |reference|."""
    return abs(measured - reference) <= rel * abs(reference)


def ratio_check(
    name: str, measured: float, reference: float, rel: float
) -> ShapeCheck:
    """A ShapeCheck asserting a value lands within a relative band."""
    return ShapeCheck(
        name,
        within_band(measured, reference, rel),
        f"{measured:.3g}",
        f"{reference:.3g} (+-{rel:.0%})",
    )


def threshold_check(
    name: str, measured: float, minimum: float, *, upper: bool = False
) -> ShapeCheck:
    """A ShapeCheck asserting measured >= minimum (or <= when upper)."""
    passed = measured <= minimum if upper else measured >= minimum
    op = "<=" if upper else ">="
    return ShapeCheck(name, passed, f"{measured:.3g}", f"{op} {minimum:.3g}")
