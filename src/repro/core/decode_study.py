"""Extension A9: KV-cached decode — where the MME starves.

Training keeps the MME fed with big matmuls; token-by-token decoding
feeds it (1 x D) matvecs that cover a single row of the 128-row MAC
array. The study profiles one decode step across context lengths and
quantifies the inversion of the paper's §3 picture:

* the MME's achieved rate collapses to ~1% of its training-time rate;
* the step is memory-bound on weight streaming, not compute-bound;
* attention-cache reads grow linearly with context, eventually
  rivaling the weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..models import paper_gpt_config
from ..models.kvcache import record_decode_step
from ..synapse import ProfileResult, SynapseProfiler
from ..util.errors import DataError
from ..util.tabulate import render_table
from ..util.units import tflops
from .reference import ShapeCheck, threshold_check

DEFAULT_CONTEXTS = (128, 512, 1024, 1536)


@dataclass
class DecodeStudyResult:
    """Per-context decode-step profiles."""

    contexts: list[int]
    batch: int
    profiles: list[ProfileResult] = field(default_factory=list)
    #: the Fig 4 training-time MME rate, for the collapse comparison
    training_mme_tflops: float = 0.0

    def step_ms(self) -> list[float]:
        """Decode-step latencies."""
        return [p.total_time_ms for p in self.profiles]

    def mme_achieved_tflops(self, index: int) -> float:
        """Achieved MME rate during one decode step.

        Raises :class:`~repro.util.errors.DataError` when the step
        never touched the MME — silently reporting 0.0 TFLOPS would
        make the "rate collapse" rows quietly wrong instead of
        flagging a degenerate profile.
        """
        profile = self.profiles[index]
        mme_flops = sum(
            op.flops for op in profile.schedule.ops
            if op.engine is EngineKind.MME
        )
        busy = profile.timeline.busy_time_us(EngineKind.MME)
        if busy <= 0.0:
            raise DataError(
                f"decode step at context {self.contexts[index]} kept the "
                "MME idle (0 us busy): no achieved rate is defined for "
                "this profile"
            )
        return tflops(mme_flops, busy)

    def tokens_per_second(self, index: int) -> float:
        """Decode throughput at one context length.

        Raises :class:`~repro.util.errors.DataError` on a zero-length
        profile instead of dividing by zero.
        """
        total_us = self.profiles[index].total_time_us
        if total_us <= 0.0:
            raise DataError(
                f"decode step at context {self.contexts[index]} measured "
                f"{total_us} us: throughput is undefined for a "
                "zero-duration profile"
            )
        return self.batch / (total_us / 1e6)

    def checks(self) -> list[ShapeCheck]:
        """The extension's claims."""
        rate = self.mme_achieved_tflops(0)
        collapse = rate / max(self.training_mme_tflops, 1e-9)
        latencies = self.step_ms()
        growth = latencies[-1] / latencies[0]
        return [
            ShapeCheck(
                "ext-decode: MME rate collapses vs training",
                collapse < 0.10,
                f"{rate:.2f} TFLOPS ({collapse:.1%} of training's "
                f"{self.training_mme_tflops:.1f})",
                "< 10%",
            ),
            ShapeCheck(
                "ext-decode: latency grows sub-linearly with context "
                "(weights dominate the streaming)",
                growth < (self.contexts[-1] / self.contexts[0]) * 0.5,
                f"{growth:.2f}x for {self.contexts[-1] // self.contexts[0]}x "
                "context",
                "well below proportional",
            ),
            threshold_check(
                "ext-decode: step latency is sub-10ms (interactive)",
                max(latencies), 10.0, upper=True,
            ),
        ]

    def render(self) -> str:
        """Per-context table."""
        rows = []
        for i, t in enumerate(self.contexts):
            rows.append((
                t,
                self.step_ms()[i],
                f"{self.tokens_per_second(i):,.0f}",
                f"{self.mme_achieved_tflops(i):.2f}",
                f"{self.profiles[i].utilization(EngineKind.MME):.0%}",
                f"{self.profiles[i].utilization(EngineKind.TPC):.0%}",
            ))
        return render_table(
            ["context", "step (ms)", "tokens/s", "MME TFLOPS", "MME util",
             "TPC util"],
            rows,
            title=f"A9: KV-cached decode (GPT config, batch {self.batch}; "
                  f"training MME rate ~{self.training_mme_tflops:.1f} TFLOPS)",
        )


def run_decode_study(
    contexts: tuple[int, ...] = DEFAULT_CONTEXTS,
    *,
    batch: int = 1,
    config: GaudiConfig | None = None,
) -> DecodeStudyResult:
    """Profile decode steps across context lengths."""
    config = config or GaudiConfig()
    model_cfg = paper_gpt_config()
    result = DecodeStudyResult(list(contexts), batch)
    for context in contexts:
        rec = record_decode_step(model_cfg, batch=batch,
                                 context_len=context)
        result.profiles.append(SynapseProfiler(config).profile(rec.graph))

    # training-time comparison point: the Fig 8 step's MME rate
    from .e2e_llm import record_training_step

    train = SynapseProfiler(config).profile(
        record_training_step("gpt").graph
    )
    mme_flops = sum(
        op.flops for op in train.schedule.ops
        if op.engine is EngineKind.MME
    )
    result.training_mme_tflops = tflops(
        mme_flops, train.timeline.busy_time_us(EngineKind.MME)
    )
    return result
