"""A18: cross-backend comparison — Gaudi HL-205 vs Cerebras WSE.

PR-10's backend abstraction makes the compiler target-neutral: every
pass asks :class:`~repro.hw.backend.Backend` for engine placement and
cost hooks instead of hardcoding MME/TPC. This ablation exercises the
seam end-to-end by compiling and profiling the same graphs under both
registered backends:

* the Fig-4 softmax Transformer layer at the paper's §3.3 shapes
  (sequence 2048, batch 128);
* the §3.4 GPT-2 and BERT training steps (sequence 2048, batch 8).

The WSE backend follows the weight-streaming execution model of
arXiv 2409.00287: activations stay resident in wafer SRAM, weights
stream from MemoryX, and there is no KV-cache/HBM pressure term — so
per-layer matmul throughput is fabric-bound, orders of magnitude above
one Gaudi MME. Checked claims:

* WSE beats Gaudi on achieved per-layer matmul throughput at the
  paper's shapes (the ISSUE acceptance criterion);
* WSE's layer wall-clock beats Gaudi's;
* the refactor guard: profiling with an explicit ``backend="gaudi"``
  is byte-identical to the pre-refactor default options path;
* both backends run the GPT and BERT training steps end-to-end, and
  the WSE steps fit the wafer's 40 GiB SRAM (dataflow residency, not
  HBM spill);
* on the WSE the work is compute-resident: PE utilization dominates
  the weight-stream (DMA) lane.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..hw.backend import Backend, get_backend
from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind, OpClass
from ..synapse import ProfileResult, SynapseProfiler, default_compiler_options
from ..util.tabulate import render_table
from ..util.units import fmt_bytes
from .reference import E2E_SHAPES, ShapeCheck, threshold_check

#: the backends the study crosses; order fixes the table layout
STUDY_BACKENDS: tuple[str, ...] = ("gaudi", "wse")

#: acceptance bar — WSE achieved matmul throughput over Gaudi's on the
#: Fig-4 layer (ISSUE criterion: WSE wins; measured ~300x, demand 10x)
WSE_MATMUL_THROUGHPUT_RATIO_MIN = 10.0

#: workloads profiled per backend (layer study + the two §3.4 models)
WORKLOADS: tuple[str, ...] = ("layer", "gpt", "bert")


def matmul_flops(result: ProfileResult) -> float:
    """Total FLOPs of the schedule's matmul work items."""
    return sum(
        item.flops
        for op in result.schedule.ops
        for item in op.items
        if item.op_class is OpClass.MATMUL
    )


def matmul_engine_tflops(result: ProfileResult, backend: Backend) -> float:
    """Achieved matmul throughput: matmul FLOPs over the matmul
    engine's busy time. The cross-backend headline — one Gaudi MME
    saturates near 14 TFLOP/s while the wafer's PE grid is fabric-fed.
    """
    busy_us = result.timeline.busy_time_us(backend.matmul_engine)
    if busy_us <= 0:
        return 0.0
    return matmul_flops(result) / busy_us / 1e6


def tokens_per_second(result: ProfileResult) -> float:
    """Training throughput at the §3.4 shapes."""
    return (
        E2E_SHAPES["batch"] * E2E_SHAPES["seq_len"]
        / (result.total_time_us / 1e6)
    )


def utilization_breakdown(result: ProfileResult, backend: Backend) -> str:
    """``engine busy%`` pairs for every engine the backend declares."""
    return ", ".join(
        f"{engine.value} {result.timeline.utilization(engine):.0%}"
        for engine in backend.engines
    )


@dataclass
class BackendStudyResult:
    """A18's measurements: backend x workload profiles."""

    #: backend name -> workload name -> profile
    profiles: dict[str, dict[str, ProfileResult]] = field(
        default_factory=dict
    )
    #: Fig-4 layer profiled under *default* options (no backend field
    #: touched) — the pre-refactor path the gaudi run must match
    baseline_layer: ProfileResult | None = None

    def profile(self, backend: str, workload: str = "layer"):
        """The grid cell for one backend on one workload."""
        return self.profiles[backend][workload]

    @property
    def matmul_throughput_ratio(self) -> float:
        """WSE over Gaudi achieved matmul TFLOP/s on the Fig-4 layer."""
        gaudi = matmul_engine_tflops(
            self.profile("gaudi"), get_backend("gaudi")
        )
        if gaudi <= 0:
            return float("inf")
        return (
            matmul_engine_tflops(self.profile("wse"), get_backend("wse"))
            / gaudi
        )

    def checks(self) -> list[ShapeCheck]:
        """A18's acceptance criteria."""
        from ..hw.backends import WSEConfig

        gaudi_layer = self.profile("gaudi")
        wse_layer = self.profile("wse")
        wse_sram = WSEConfig().sram.capacity_bytes
        wse_peak = max(
            self.profile("wse", m).peak_hbm_bytes for m in ("gpt", "bert")
        )
        steps_ok = all(
            0.0 < self.profile(b, m).total_time_us < float("inf")
            for b in STUDY_BACKENDS for m in ("gpt", "bert")
        )
        wse_tl = wse_layer.timeline
        return [
            threshold_check(
                "A18: WSE / Gaudi layer matmul throughput",
                self.matmul_throughput_ratio,
                WSE_MATMUL_THROUGHPUT_RATIO_MIN,
            ),
            ShapeCheck(
                "A18: WSE layer wall-clock beats Gaudi",
                wse_layer.total_time_us < gaudi_layer.total_time_us,
                f"{wse_layer.total_time_ms:.2f} ms vs "
                f"{gaudi_layer.total_time_ms:.2f} ms",
                "wse < gaudi",
            ),
            ShapeCheck(
                "A18: explicit backend='gaudi' matches the default path",
                self.baseline_layer is not None
                and gaudi_layer.total_time_us
                == self.baseline_layer.total_time_us
                and gaudi_layer.peak_hbm_bytes
                == self.baseline_layer.peak_hbm_bytes,
                f"{gaudi_layer.total_time_us:.3f} us vs "
                + (f"{self.baseline_layer.total_time_us:.3f} us"
                   if self.baseline_layer else "n/a"),
                "byte-identical",
            ),
            ShapeCheck(
                "A18: both backends run GPT and BERT training steps",
                steps_ok,
                "all finite" if steps_ok else "degenerate profile",
                "4 finite profiles",
            ),
            ShapeCheck(
                "A18: WSE training steps fit wafer SRAM (no HBM tier)",
                wse_peak <= wse_sram,
                fmt_bytes(wse_peak),
                f"<= {fmt_bytes(wse_sram)}",
            ),
            ShapeCheck(
                "A18: WSE work is compute-resident (PE >= stream lane)",
                wse_tl.utilization(EngineKind.PE)
                >= wse_tl.utilization(EngineKind.DMA),
                f"PE {wse_tl.utilization(EngineKind.PE):.1%} vs "
                f"DMA {wse_tl.utilization(EngineKind.DMA):.1%}",
                "PE >= DMA",
            ),
        ]

    def render(self) -> str:
        """The backend x workload grid plus the headline ratio."""
        rows = []
        for name in STUDY_BACKENDS:
            backend = get_backend(name)
            for workload in WORKLOADS:
                prof = self.profile(name, workload)
                rows.append((
                    name, workload,
                    f"{prof.total_time_ms:.2f}",
                    (f"{tokens_per_second(prof):,.0f}"
                     if workload != "layer" else "-"),
                    (f"{matmul_engine_tflops(prof, backend):,.1f}"
                     if workload == "layer" else "-"),
                    fmt_bytes(prof.peak_hbm_bytes),
                    utilization_breakdown(prof, backend),
                ))
        table = render_table(
            ["backend", "workload", "total (ms)", "tokens/s",
             "matmul TFLOP/s", "peak mem", "engine utilization"],
            rows,
            title="A18: cross-backend comparison (Gaudi vs WSE)",
        )
        return "\n".join([
            table,
            f"WSE over Gaudi layer matmul throughput: "
            f"{self.matmul_throughput_ratio:,.0f}x "
            "(weight-streaming dataflow vs HBM-fed MME)",
        ])


def run_backend_ablation(
    config: GaudiConfig | None = None,
) -> BackendStudyResult:
    """Profile the Fig-4 layer and both §3.4 training steps under every
    registered study backend; the Gaudi cells double as the refactor's
    byte-identity guard."""
    from .attention_study import profile_layer
    from .e2e_llm import record_training_step

    base = default_compiler_options()
    result = BackendStudyResult()
    steps = {
        model: record_training_step(model).graph
        for model in ("gpt", "bert")
    }
    for name in STUDY_BACKENDS:
        options = dataclasses.replace(base, backend=name)
        by_workload = result.profiles.setdefault(name, {})
        by_workload["layer"] = profile_layer(
            "softmax", config=config, options=options
        )
        for model, graph in steps.items():
            profiler = SynapseProfiler(
                config if name == "gaudi" else None, options
            )
            by_workload[model] = profiler.profile(graph)
    result.baseline_layer = profile_layer("softmax", config=config)
    return result
