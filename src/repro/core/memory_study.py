"""A14: memory planning — activation checkpointing + HBM spill.

The paper trains at batch 8 "due to limited GAUDI memory" (§3.4); the
Fig-8 GPT-2 step at batch 32 wants ~37 GiB of HBM and is rejected by
the 32 GiB plan. This ablation turns the memory wall into a planning
problem: each transformer layer records as a checkpoint segment
(:func:`repro.ht.checkpoint`) and the ``memory_planning`` pass, run
with ``memory_policy="auto"``, chooses per over-budget interval
between *recomputing* the dropped activations before backward and
*spilling* long-lived values to host over the DMA engine — whichever
costs fewer microseconds per byte relieved under the shared-HBM cost
model.

The sweep profiles GPT-2 and BERT at batch 8 -> 32 under the 32 GiB
budget and reports, per point: whether the unplanned graph fits, the
planned peak, the slowdown against the infinite-memory oracle (the
same graph compiled with enforcement off), and the recompute/spill
mix the planner chose. It also re-verifies on a concrete layer that a
planned schedule is numerically byte-identical to the unplanned one
and that the ``recompute-segment`` / ``spill-pairing`` lint rules
find nothing to flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .. import ht
from ..hw.config import GaudiConfig
from ..models import TransformerLayer
from ..models.config import AttentionConfig, LayerConfig
from ..synapse import (
    CompilerOptions,
    GraphCompiler,
    execute_schedule,
    lint_schedule,
    memory_timeline,
)
from ..util.tabulate import render_table
from ..util.units import GIB
from .reference import ShapeCheck, threshold_check

#: batches swept per model; 8 is the paper's choice, 32 is the wall
MEMORY_SWEEP_BATCHES: tuple[int, ...] = (8, 16, 32)

#: acceptance bar — planned step time vs the infinite-memory oracle on
#: every feasible point (ISSUE criterion; GPT-2 batch 32 measures
#: ~1.01x: the lookahead scheduler hides almost all spill DMA)
PLANNED_SLOWDOWN_MAX = 1.15


@dataclass
class MemoryRow:
    """One (model, batch) point of the A14 sweep."""

    model: str
    batch: int
    oracle_peak_bytes: int
    oracle_time_us: float
    #: None when the unplanned graph already fits the budget
    planned_peak_bytes: int | None = None
    planned_time_us: float | None = None
    spill_ops: int = 0
    spill_bytes: int = 0
    recompute_ops: int = 0
    recompute_bytes: int = 0

    @property
    def fits_unplanned(self) -> bool:
        """Whether the graph fits HBM with no planning at all."""
        return self.planned_peak_bytes is None

    @property
    def feasible(self) -> bool:
        """Whether the point runs under the budget (planned or not)."""
        return self.fits_unplanned or self.planned_peak_bytes >= 0

    @property
    def peak_bytes(self) -> int:
        """Resident peak of the schedule that would actually run."""
        if self.planned_peak_bytes is None:
            return self.oracle_peak_bytes
        return self.planned_peak_bytes

    @property
    def slowdown(self) -> float:
        """Planned step time over the infinite-memory oracle's."""
        if self.planned_time_us is None or self.oracle_time_us <= 0:
            return 1.0
        return self.planned_time_us / self.oracle_time_us


@dataclass
class MemoryStudyResult:
    """A14's measurements: the batch sweep + the planner invariants."""

    budget_bytes: int
    rows: list[MemoryRow] = field(default_factory=list)
    #: planned-vs-unplanned numerics agreement on the concrete layer
    numerics_identical: bool = False
    #: recompute-segment / spill-pairing findings on the planned check
    lint_findings: int = 0
    #: memtrace peak == planner peak on every planned sweep schedule
    timeline_agrees: bool = False

    def row(self, model: str, batch: int) -> MemoryRow:
        """The sweep point for ``model`` at ``batch``."""
        for r in self.rows:
            if r.model == model and r.batch == batch:
                return r
        raise KeyError(f"no sweep row for {model} batch {batch}")

    def checks(self) -> list[ShapeCheck]:
        """A14's acceptance criteria."""
        wall = self.row("gpt", 32)
        planned = [r for r in self.rows if not r.fits_unplanned]
        worst_slowdown = max((r.slowdown for r in planned), default=1.0)
        return [
            ShapeCheck(
                "A14: GPT batch 32 exceeds 32 GiB unplanned (the paper's "
                "memory wall)",
                wall.oracle_peak_bytes > self.budget_bytes,
                f"{wall.oracle_peak_bytes / GIB:.2f} GiB",
                f"> {self.budget_bytes / GIB:.0f} GiB",
            ),
            ShapeCheck(
                "A14: every swept point fits the budget once planned",
                all(r.peak_bytes <= self.budget_bytes for r in self.rows),
                f"max peak {max(r.peak_bytes for r in self.rows) / GIB:.2f}"
                " GiB",
                f"<= {self.budget_bytes / GIB:.0f} GiB",
            ),
            ShapeCheck(
                "A14: auto policy mixes recompute and spill at the wall",
                wall.spill_ops > 0 and wall.recompute_ops > 0,
                f"{wall.spill_ops} spill(s), "
                f"{wall.recompute_ops} recompute(s)",
                ">= 1 of each",
            ),
            threshold_check(
                "A14: worst planned slowdown vs infinite-memory oracle",
                worst_slowdown, PLANNED_SLOWDOWN_MAX, upper=True,
            ),
            ShapeCheck(
                "A14: planned schedule numerics byte-identical to "
                "unplanned",
                self.numerics_identical, str(self.numerics_identical),
                "True",
            ),
            ShapeCheck(
                "A14: recompute-segment / spill-pairing lint clean",
                self.lint_findings == 0,
                f"{self.lint_findings} finding(s)", "0 findings",
            ),
            ShapeCheck(
                "A14: memtrace timeline peak matches the planner's",
                self.timeline_agrees, str(self.timeline_agrees), "True",
            ),
        ]

    def render(self) -> str:
        """The batch-sweep table."""
        rows = []
        for r in self.rows:
            rows.append((
                r.model,
                r.batch,
                f"{r.oracle_peak_bytes / GIB:.2f}",
                "yes" if r.fits_unplanned else "no",
                "-" if r.fits_unplanned
                else f"{r.planned_peak_bytes / GIB:.2f}",
                "-" if r.fits_unplanned else f"{r.slowdown:.3f}x",
                "-" if r.fits_unplanned
                else f"{r.spill_ops} ({r.spill_bytes / GIB:.2f} GiB)",
                "-" if r.fits_unplanned
                else f"{r.recompute_ops} "
                     f"({r.recompute_bytes / GIB:.2f} GiB)",
            ))
        table = render_table(
            ["model", "batch", "oracle peak (GiB)", "fits", "planned peak",
             "slowdown", "spills", "recomputes"],
            rows,
            title=f"A14: memory planning under a "
                  f"{self.budget_bytes / GIB:.0f} GiB budget "
                  f"(policy auto)",
        )
        return "\n".join([
            table,
            "oracle = same graph compiled with memory enforcement off "
            "(infinite-memory baseline);",
            "spill DMA drains through the shared-HBM arbiter and the "
            "lookahead scheduler hides the prefetches.",
        ])


def _check_planned_numerics() -> tuple[bool, int]:
    """Compile a small concrete checkpointed layer twice — once with
    enforcement off (the oracle) and once planned to a budget below its
    activation peak — execute both schedules functionally, and verify
    (a) every value the two environments share is byte-identical,
    (b) the ``recompute-segment`` / ``spill-pairing`` lint rules are
    clean on the planned schedule."""
    cfg = LayerConfig(
        attention=AttentionConfig(num_heads=2, head_dim=32, kind="softmax"),
        include_ffn=False,
    )
    layer = TransformerLayer(cfg, materialize=True)
    rng = np.random.default_rng(1234)
    x_np = rng.normal(size=(2, 16, cfg.d_model)).astype(np.float32)

    with ht.record("a14-numerics", mode="concrete") as rec:
        x = ht.tensor(x_np, name="x")
        y = ht.checkpoint(layer, x, label="layer")
        y.sum().backward()

    inputs = {"x": x_np}
    for p in layer.parameters():
        inputs[p.name] = p.data

    base = CompilerOptions(use_recipe_cache=False, enforce_memory=False)
    oracle = GraphCompiler(options=base).compile(rec.graph)
    pers = oracle.memory.persistent_bytes
    budget = pers + (oracle.memory.peak_bytes - pers) * 9 // 10
    planned = GraphCompiler(options=replace(
        base, memory_policy="auto", hbm_budget=budget,
    )).compile(rec.graph)
    if planned.memory.peak_bytes >= oracle.memory.peak_bytes:
        return False, 0  # the planner must actually engage for the check

    env_oracle = execute_schedule(oracle, inputs)
    env_planned = execute_schedule(planned, inputs)
    identical = all(
        np.array_equal(env_planned[vid], env_oracle[vid])
        for vid in env_planned
        if vid in env_oracle
    )
    findings = lint_schedule(planned)
    return identical, len(findings)


def run_memory_ablation(
    config: GaudiConfig | None = None,
    *,
    batches: tuple[int, ...] = MEMORY_SWEEP_BATCHES,
    budget_bytes: int | None = None,
) -> MemoryStudyResult:
    """Sweep GPT-2/BERT batch sizes under the HBM budget.

    Every point is recorded with activation checkpointing on; points
    whose unplanned peak exceeds the budget are re-compiled with
    ``memory_policy="auto"`` and executed against the infinite-memory
    oracle run of the same graph.

    The batch grid is a ``profile``-executor
    :class:`~repro.core.sweep.SweepSpec` under the oracle policy; the
    over-budget subset then re-runs as an explicit-points sweep under
    the planning policy, sharing the oracle sweep's recorded graphs.
    """
    from .sweep import SweepPoint, SweepSpec, run_sweep

    config = config or GaudiConfig()
    budget = budget_bytes or config.hbm.capacity_bytes
    result = MemoryStudyResult(budget_bytes=budget)
    timeline_agrees = True

    oracle_overrides = (
        ("use_recipe_cache", False), ("enforce_memory", False),
    )
    planned_overrides = (
        ("use_recipe_cache", False), ("memory_policy", "auto"),
        ("hbm_budget", budget), ("enforce_memory", True),
    )
    graphs: dict = {}
    oracle_sweep = run_sweep(
        SweepSpec(
            name="a14-memory-oracle",
            models=("gpt", "bert"),
            batches=batches,
            checkpoint=True,
            policies=(("oracle", oracle_overrides),),
            executor="profile",
        ),
        config=config, options=CompilerOptions(), graphs=graphs,
    )
    for point in oracle_sweep.results:
        result.rows.append(MemoryRow(
            model=point.point.model,
            batch=point.point.batch,
            oracle_peak_bytes=point.metrics["peak_bytes"],
            oracle_time_us=point.metrics["total_time_us"],
        ))

    over_budget = [
        r for r in result.rows if r.oracle_peak_bytes > budget
    ]
    if over_budget:
        planned_sweep = run_sweep(
            SweepSpec(
                name="a14-memory-planned",
                executor="profile",
                points=tuple(
                    SweepPoint(
                        model=r.model, batch=r.batch, checkpoint=True,
                        policy="planned", overrides=planned_overrides,
                    )
                    for r in over_budget
                ),
            ),
            config=config, options=CompilerOptions(), graphs=graphs,
        )
        for row, point in zip(over_budget, planned_sweep.results):
            planned = point.profile
            stats = planned.schedule.stats["memory"]
            row.planned_peak_bytes = planned.schedule.memory.peak_bytes
            row.planned_time_us = planned.total_time_us
            row.spill_ops = stats["spill_ops"]
            row.spill_bytes = stats["spill_bytes"]
            row.recompute_ops = stats["recompute_ops"]
            row.recompute_bytes = stats["recompute_bytes"]
            timeline_agrees = timeline_agrees and (
                memory_timeline(planned.schedule).peak_bytes
                == row.planned_peak_bytes
            )

    result.timeline_agrees = timeline_agrees
    result.numerics_identical, result.lint_findings = (
        _check_planned_numerics()
    )
    return result
