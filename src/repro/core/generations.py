"""Extension A7: does the MME/TPC imbalance persist on a Gaudi2?

The paper profiles first-generation Gaudi. This what-if re-runs the
Fig 4 layer and the GPT training step on a Gaudi2-like configuration
(24 TPCs, ~3x MME, 96 GB HBM2E — scaled from public generation ratios,
see :func:`repro.hw.config.gaudi2_config`) and asks the questions the
paper's findings raise:

* the absolute times drop by roughly the hardware ratio, but
* softmax is *still* TPC-only, so the architectural imbalance — and
  the case for linearized/pipelined attention — persists;
* the larger HBM lifts the batch ceiling that forced batch 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import GaudiConfig, gaudi2_config
from ..synapse import ProfileResult
from ..util.tabulate import render_table
from .attention_study import profile_layer
from .e2e_llm import E2EProfileResult, max_batch_that_fits, run_e2e
from .reference import ShapeCheck, threshold_check


@dataclass
class GenerationComparisonResult:
    """Gaudi1 vs Gaudi2-like results for the same workloads."""

    layer_g1: ProfileResult
    layer_g2: ProfileResult
    e2e_g1: E2EProfileResult
    e2e_g2: E2EProfileResult
    max_batch_g1: int
    max_batch_g2: int

    @property
    def layer_speedup(self) -> float:
        """Fig 4 layer: generation-over-generation speedup."""
        return self.layer_g1.total_time_us / self.layer_g2.total_time_us

    @property
    def e2e_speedup(self) -> float:
        """GPT step: generation-over-generation speedup."""
        return (self.e2e_g1.profile.total_time_us
                / self.e2e_g2.profile.total_time_us)

    def checks(self) -> list[ShapeCheck]:
        """The what-if's claims."""
        return [
            threshold_check(
                "ext-gen: Gaudi2 layer speedup roughly tracks hardware ratio",
                self.layer_speedup, 2.0,
            ),
            threshold_check(
                "ext-gen: Gaudi2 GPT-step speedup", self.e2e_speedup, 2.0,
            ),
            ShapeCheck(
                "ext-gen: softmax still dominates the TPC on Gaudi2",
                self.layer_g2.softmax_tpc_share > 0.7,
                f"{self.layer_g2.softmax_tpc_share:.1%}",
                "> 70% (the imbalance is architectural)",
            ),
            ShapeCheck(
                "ext-gen: MME still idles during softmax on Gaudi2",
                self.layer_g2.mme_idle_fraction > 0.25,
                f"{self.layer_g2.mme_idle_fraction:.1%}",
                "> 25%",
            ),
            ShapeCheck(
                "ext-gen: 96 GB HBM lifts the batch ceiling",
                self.max_batch_g2 > self.max_batch_g1,
                f"{self.max_batch_g1} -> {self.max_batch_g2}",
                "larger max batch",
            ),
        ]

    def render(self) -> str:
        """Side-by-side comparison table."""
        return render_table(
            ["metric", "Gaudi (paper)", "Gaudi2-like", "ratio"],
            [
                ("Fig4 layer (ms)", self.layer_g1.total_time_ms,
                 self.layer_g2.total_time_ms,
                 f"{self.layer_speedup:.1f}x"),
                ("softmax TPC share",
                 f"{self.layer_g1.softmax_tpc_share:.0%}",
                 f"{self.layer_g2.softmax_tpc_share:.0%}", "-"),
                ("MME idle (Fig4)",
                 f"{self.layer_g1.mme_idle_fraction:.0%}",
                 f"{self.layer_g2.mme_idle_fraction:.0%}", "-"),
                ("GPT step (ms)", self.e2e_g1.profile.total_time_ms,
                 self.e2e_g2.profile.total_time_ms,
                 f"{self.e2e_speedup:.1f}x"),
                ("GPT tokens/s", f"{self.e2e_g1.tokens_per_second:,.0f}",
                 f"{self.e2e_g2.tokens_per_second:,.0f}",
                 f"{self.e2e_g2.tokens_per_second / self.e2e_g1.tokens_per_second:.1f}x"),
                ("max batch @ seq 2048", self.max_batch_g1,
                 self.max_batch_g2,
                 f"{self.max_batch_g2 // max(1, self.max_batch_g1)}x"),
            ],
            title="A7: Gaudi vs Gaudi2-like what-if (same workloads)",
        )


def run_generation_comparison() -> GenerationComparisonResult:
    """Run the Fig 4 layer + GPT step on both generations."""
    g1 = GaudiConfig()
    g2 = gaudi2_config()
    return GenerationComparisonResult(
        layer_g1=profile_layer("softmax", config=g1),
        layer_g2=profile_layer("softmax", config=g2),
        e2e_g1=run_e2e("gpt", config=g1),
        e2e_g2=run_e2e("gpt", config=g2),
        max_batch_g1=max_batch_that_fits("gpt", config=g1),
        max_batch_g2=max_batch_that_fits("gpt", config=g2),
    )
