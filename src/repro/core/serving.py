"""A15: request-level inference serving — continuous vs static batching.

The paper profiles training steps; this module serves *traffic*. A
Poisson stream of requests (each with its own prompt and output
length) flows through a simulated serving loop built from the pieces
earlier PRs measured one at a time:

* **prefill** — one forward pass over the prompt (the
  :func:`~repro.core.e2e_llm.record_forward_step` shape), producing
  the first token and populating the request's KV cache;
* **decode** — KV-cached steps
  (:func:`~repro.models.kvcache.record_decode_step`), one token per
  step for every request in the batch, until each request has its
  output or hits the cache-full boundary
  (:func:`~repro.models.kvcache.max_decode_context`) and finishes
  truncated instead of crashing;
* **batching policy** — ``static`` admits a batch, runs it to
  completion, then admits the next (stragglers hold every slot);
  ``continuous`` re-forms the batch between decode steps — finished
  requests leave immediately and waiting requests join in-flight, the
  ORCA/vLLM discipline;
* **step costs** — every step geometry is quantized (batch to a power
  of two, context/prompt up to a quantum) and priced once through a
  :class:`~repro.synapse.serving.ServingRuntime`, so simulating 10^4 -
  10^6 requests re-plays memoized step costs instead of recompiling;
* **memory admission** — weights plus each in-flight request's
  *reserved* KV footprint must fit the HBM budget, and the worst-case
  decode geometry must pass the memory planner (the PR-5 machinery):
  under a tight budget the cache, not the slot count, bounds the
  admissible batch.

The A15 ablation sweeps arrival rates under both policies and checks
the serving story: continuous batching beats static on p99
time-to-first-token at equal-or-better throughput.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import ht
from ..hw.config import GaudiConfig
from ..hw.dtypes import DType, itemsize
from ..models import GPT2LMHeadModel, paper_gpt_config
from ..models.config import LLMConfig
from ..models.kvcache import max_decode_context, record_decode_step
from ..synapse import CompilerOptions, default_compiler_options
from ..synapse.serving import ServingRuntime
from ..util.errors import ConfigError, DataError, ExecutionError
from ..util.rng import make_rng
from ..util.tabulate import render_table
from .reference import ShapeCheck, threshold_check

#: context/prompt lengths quantize up to multiples of this (the recipe
#: geometry grid — coarser means fewer compiles, finer means less
#: padded work per step)
DEFAULT_CTX_QUANTUM = 128

#: serving policies the simulator implements
SERVING_POLICIES = ("static", "continuous")


@dataclass(frozen=True)
class ServingWorkload:
    """Per-request length distributions (inclusive integer ranges)."""

    prompt_range: tuple[int, int] = (16, 256)
    output_range: tuple[int, int] = (8, 96)

    def describe(self) -> dict:
        """JSON-ready identity of the workload distributions."""
        return {
            "prompt_lo": self.prompt_range[0],
            "prompt_hi": self.prompt_range[1],
            "output_lo": self.output_range[0],
            "output_hi": self.output_range[1],
        }


DEFAULT_WORKLOAD = ServingWorkload()


@dataclass
class Request:
    """One serving request and its lifecycle timestamps (us)."""

    rid: int
    arrival_us: float
    prompt_len: int
    output_len: int
    admitted_us: float | None = None
    first_token_us: float | None = None
    finish_us: float | None = None
    #: tokens produced so far (prefill yields the first)
    generated: int = 0
    #: KV-cache entries currently resident for this request
    context_len: int = 0
    #: "completed" | "length_cap" (cache-full truncation) | "rejected"
    finish_reason: str | None = None
    #: admission-time reservation: the quantized worst-case KV bytes
    reserved_kv_bytes: int = 0

    @property
    def ttft_us(self) -> float:
        """Time to first token (arrival -> prefill completion)."""
        return self.first_token_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        """Time spent waiting before admission."""
        return self.admitted_us - self.arrival_us


def generate_requests(
    num_requests: int,
    arrival_rate_per_s: float,
    *,
    workload: ServingWorkload = DEFAULT_WORKLOAD,
    seed: int = 0,
) -> list[Request]:
    """A Poisson arrival trace with per-request lengths.

    Inter-arrival gaps are exponential with mean ``1/rate``; prompt
    and output lengths draw uniformly from the workload's ranges. The
    trace is a pure function of ``(num_requests, rate, workload,
    seed)`` — the determinism the byte-identical JSONL property
    rests on.
    """
    if num_requests < 1:
        raise DataError(f"num_requests must be >= 1, got {num_requests}")
    if arrival_rate_per_s <= 0:
        raise DataError(
            f"arrival_rate_per_s must be > 0, got {arrival_rate_per_s}"
        )
    rng = make_rng(seed)
    gaps = rng.exponential(1e6 / arrival_rate_per_s, size=num_requests)
    arrivals = np.cumsum(gaps)
    p_lo, p_hi = workload.prompt_range
    o_lo, o_hi = workload.output_range
    prompts = rng.integers(p_lo, p_hi, size=num_requests, endpoint=True)
    outputs = rng.integers(o_lo, o_hi, size=num_requests, endpoint=True)
    return [
        Request(
            rid=i,
            arrival_us=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            output_len=int(outputs[i]),
        )
        for i in range(num_requests)
    ]


def kv_bytes_per_token(config: LLMConfig) -> int:
    """Resident KV-cache bytes one cached token costs (all layers)."""
    attn = config.layer.attention
    return (
        2 * config.num_layers * attn.num_heads * attn.head_dim
        * itemsize(DType.BF16)
    )


def serving_weight_bytes(config: LLMConfig) -> int:
    """Persistent weight bytes resident while serving.

    Per layer: the four attention projections plus the two FFN
    matmuls; plus the LM head and both embedding tables.
    """
    d = config.d_model
    ffn = d * config.layer.ffn_mult
    per_layer = 4 * d * d + 2 * d * ffn
    total = (
        config.num_layers * per_layer
        + d * config.vocab_size           # lm head
        + config.vocab_size * d           # token embeddings
        + config.max_seq_len * d          # position embeddings
    )
    return total * itemsize(DType.BF16)


def _bucket_batch(n: int) -> int:
    """Quantize a batch size up to the next power of two."""
    b = 1
    while b < n:
        b *= 2
    return b


def _config_tag(config: LLMConfig) -> tuple:
    """Geometry-memo namespace for one model config."""
    return (
        config.vocab_size, config.max_seq_len, config.num_layers,
        config.d_model, config.layer.ffn_mult,
        config.layer.attention.num_heads,
    )


def _record_prefill(config: LLMConfig, batch: int, seq_len: int):
    """Record one symbolic prompt-prefill forward at the geometry."""
    model = GPT2LMHeadModel(config, materialize=False)
    with ht.record(f"prefill-b{batch}-s{seq_len}", mode="symbolic") as rec:
        model(ht.input_tensor((batch, seq_len), name="input_ids"))
    return rec.graph


class ServingSimulator:
    """The request-level serving loop over a step-cost oracle.

    One simulator serves one model config through one
    :class:`~repro.synapse.serving.ServingRuntime`; its HBM budget is
    the runtime's (set there so the memory planner enforces the same
    number the admission arithmetic uses).
    """

    def __init__(
        self,
        runtime: ServingRuntime,
        *,
        model_config: LLMConfig | None = None,
        max_batch: int = 8,
        ctx_quantum: int = DEFAULT_CTX_QUANTUM,
    ):
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if ctx_quantum < 1:
            raise ConfigError(
                f"ctx_quantum must be >= 1, got {ctx_quantum}"
            )
        self.runtime = runtime
        self.config = model_config or paper_gpt_config()
        if not self.config.layer.attention.causal:
            raise ConfigError(
                "serving decode requires a causal (GPT-style) model"
            )
        self.max_batch = max_batch
        self.ctx_quantum = ctx_quantum
        self.budget_bytes = runtime.hbm_budget
        self.weight_bytes = serving_weight_bytes(self.config)
        self.kv_per_token = kv_bytes_per_token(self.config)
        self._tag = _config_tag(self.config)
        # per-run trackers (reset by run())
        self._reset_stats()

    def _reset_stats(self) -> None:
        self.prefill_steps = 0
        self.decode_steps = 0
        self.decode_slot_tokens = 0
        self.peak_in_flight = 0
        self.peak_kv_reserved_bytes = 0
        self.peak_kv_actual_bytes = 0

    # -- geometry -----------------------------------------------------------

    def _ctx_bucket(self, context_len: int) -> int:
        """Quantize a decode context up; never past the legal maximum."""
        cap = max_decode_context(self.config)
        q = self.ctx_quantum
        return min(-(-context_len // q) * q, cap)

    def _prompt_bucket(self, prompt_len: int) -> int:
        q = self.ctx_quantum
        return min(-(-prompt_len // q) * q, self.config.max_seq_len)

    def _reserved_ctx(self, req: Request) -> int:
        """Worst-case resident cache entries, quantized."""
        final = min(
            req.prompt_len + req.output_len, self.config.max_seq_len
        )
        q = self.ctx_quantum
        return min(-(-final // q) * q, self.config.max_seq_len)

    def _decode_cost(self, batch_bucket: int, ctx_bucket: int):
        cfg = self.config
        return self.runtime.step_cost(
            (self._tag, "decode", batch_bucket, ctx_bucket),
            lambda: record_decode_step(
                cfg, batch=batch_bucket, context_len=ctx_bucket
            ).graph,
        )

    def _decode_feasible(self, batch_bucket: int, ctx_bucket: int) -> bool:
        cfg = self.config
        return self.runtime.feasible(
            (self._tag, "decode", batch_bucket, ctx_bucket),
            lambda: record_decode_step(
                cfg, batch=batch_bucket, context_len=ctx_bucket
            ).graph,
        )

    def _prefill_cost(self, batch_bucket: int, seq_bucket: int):
        cfg = self.config
        return self.runtime.step_cost(
            (self._tag, "prefill", batch_bucket, seq_bucket),
            lambda: _record_prefill(cfg, batch_bucket, seq_bucket),
        )

    def _prefill_feasible(self, batch_bucket: int, seq_bucket: int) -> bool:
        cfg = self.config
        return self.runtime.feasible(
            (self._tag, "prefill", batch_bucket, seq_bucket),
            lambda: _record_prefill(cfg, batch_bucket, seq_bucket),
        )

    # -- admission ----------------------------------------------------------

    def _viable(self, req: Request) -> bool:
        """Whether the request could ever be served alone."""
        if req.prompt_len > self.config.max_seq_len:
            return False
        reserved = self.kv_per_token * self._reserved_ctx(req)
        if self.weight_bytes + reserved > self.budget_bytes:
            return False
        if not self._prefill_feasible(1, self._prompt_bucket(req.prompt_len)):
            return False
        if req.output_len > 1 and req.prompt_len < self.config.max_seq_len:
            ctx = min(self._reserved_ctx(req), max_decode_context(self.config))
            if not self._decode_feasible(1, ctx):
                return False
        return True

    def _group_fits(
        self, members: list[Request], prefill_group: list[Request]
    ) -> bool:
        """Admission test: reservations + planner verdicts for the
        would-be in-flight set."""
        reserved = sum(r.reserved_kv_bytes or
                       self.kv_per_token * self._reserved_ctx(r)
                       for r in members)
        if self.weight_bytes + reserved > self.budget_bytes:
            return False
        bb = _bucket_batch(len(members))
        worst_ctx = min(
            max(self._reserved_ctx(r) for r in members),
            max_decode_context(self.config),
        )
        if not self._decode_feasible(bb, worst_ctx):
            return False
        pb = _bucket_batch(len(prefill_group))
        sb = self._prompt_bucket(max(r.prompt_len for r in prefill_group))
        return self._prefill_feasible(pb, sb)

    def _admit(
        self, queue: "deque[Request]", in_flight: list[Request], t: float,
        rejected: list[Request],
    ) -> list[Request]:
        """Pop FCFS joiners that fit alongside ``in_flight`` at ``t``."""
        joiners: list[Request] = []
        while (
            queue
            and queue[0].arrival_us <= t
            and len(in_flight) + len(joiners) < self.max_batch
        ):
            cand = queue[0]
            if not self._viable(cand):
                queue.popleft()
                cand.finish_reason = "rejected"
                cand.finish_us = t
                rejected.append(cand)
                continue
            cand.reserved_kv_bytes = (
                self.kv_per_token * self._reserved_ctx(cand)
            )
            if not self._group_fits(
                in_flight + joiners + [cand], joiners + [cand]
            ):
                cand.reserved_kv_bytes = 0
                break
            joiners.append(queue.popleft())
        return joiners

    # -- steps --------------------------------------------------------------

    def _prefill(self, joiners: list[Request], t: float) -> float:
        """Run one grouped prefill; returns the completion time."""
        pb = _bucket_batch(len(joiners))
        sb = self._prompt_bucket(max(r.prompt_len for r in joiners))
        cost = self._prefill_cost(pb, sb)
        self.prefill_steps += 1
        end = t + cost.time_us
        for r in joiners:
            r.admitted_us = t
            r.first_token_us = end
            r.generated = 1
            r.context_len = r.prompt_len
            if r.generated >= r.output_len:
                r.finish_reason = "completed"
                r.finish_us = end
            elif r.context_len > max_decode_context(self.config):
                # the prompt already fills the cache: no decode step is
                # legal (see models.kvcache.decode_shapes), so the
                # request finishes truncated at its prefill token
                r.finish_reason = "length_cap"
                r.finish_us = end
        return end

    def _decode(
        self, batch: list[Request], t: float, batch_bucket: int
    ) -> float:
        """Run one decode step for ``batch``; returns the end time."""
        ctx = max(r.context_len for r in batch)
        try:
            cost = self._decode_cost(batch_bucket, self._ctx_bucket(ctx))
        except Exception as err:  # admission guaranteed feasibility
            raise ExecutionError(
                "decode step infeasible after admission — the admission "
                "check reserves the worst-case geometry, so this "
                "indicates a simulator bug"
            ) from err
        self.decode_steps += 1
        self.decode_slot_tokens += len(batch)
        end = t + cost.time_us
        cap = max_decode_context(self.config)
        for r in batch:
            r.generated += 1
            cache_now = r.prompt_len + r.generated - 1
            if r.generated >= r.output_len:
                r.finish_reason = "completed"
                r.finish_us = end
            elif cache_now > cap:
                # cache-full boundary: that was the last legal step
                r.finish_reason = "length_cap"
                r.finish_us = end
            else:
                r.context_len = cache_now
        return end

    def _sample(self, in_flight: list[Request]) -> None:
        self.peak_in_flight = max(self.peak_in_flight, len(in_flight))
        reserved = sum(r.reserved_kv_bytes for r in in_flight)
        actual = sum(self.kv_per_token * r.context_len for r in in_flight)
        self.peak_kv_reserved_bytes = max(
            self.peak_kv_reserved_bytes, reserved
        )
        self.peak_kv_actual_bytes = max(self.peak_kv_actual_bytes, actual)

    # -- policies -----------------------------------------------------------

    def run(self, requests: list[Request], policy: str) -> "ServingResult":
        """Serve ``requests`` (arrival order) under ``policy``."""
        if policy not in SERVING_POLICIES:
            raise ConfigError(
                f"unknown serving policy {policy!r} "
                f"(choices: {', '.join(SERVING_POLICIES)})"
            )
        self._reset_stats()
        work = [dataclasses.replace(r) for r in requests]
        rejected: list[Request] = []
        queue = deque(work)
        if policy == "continuous":
            makespan = self._run_continuous(queue, rejected)
        else:
            makespan = self._run_static(queue, rejected)
        return ServingResult(
            policy=policy,
            records=work,
            makespan_us=makespan,
            prefill_steps=self.prefill_steps,
            decode_steps=self.decode_steps,
            decode_slot_tokens=self.decode_slot_tokens,
            peak_in_flight=self.peak_in_flight,
            peak_kv_reserved_bytes=self.peak_kv_reserved_bytes,
            peak_kv_actual_bytes=self.peak_kv_actual_bytes,
            weight_bytes=self.weight_bytes,
            budget_bytes=self.budget_bytes,
        )

    def _run_continuous(
        self, queue: "deque[Request]", rejected: list[Request]
    ) -> float:
        batch: list[Request] = []
        t = 0.0
        while queue or batch:
            if not batch and queue and queue[0].arrival_us > t:
                t = queue[0].arrival_us
            joiners = self._admit(queue, batch, t, rejected)
            if joiners:
                t = self._prefill(joiners, t)
                batch.extend(r for r in joiners if r.finish_us is None)
            self._sample(batch)
            if batch:
                t = self._decode(batch, t, _bucket_batch(len(batch)))
                batch = [r for r in batch if r.finish_us is None]
        return t

    def _run_static(
        self, queue: "deque[Request]", rejected: list[Request]
    ) -> float:
        t = 0.0
        while queue:
            if queue[0].arrival_us > t:
                t = queue[0].arrival_us
            group = self._admit(queue, [], t, rejected)
            if not group:
                continue  # head was rejected; re-test the next head
            t = self._prefill(group, t)
            batch = [r for r in group if r.finish_us is None]
            # the admitted batch runs to completion: finished requests
            # free no slot and nobody joins until the batch drains
            bucket = _bucket_batch(len(group))
            self._sample(batch)
            while batch:
                t = self._decode(batch, t, bucket)
                batch = [r for r in batch if r.finish_us is None]
        return t


@dataclass
class ServingResult:
    """One simulated serving run and its derived metrics."""

    policy: str
    records: list[Request]
    makespan_us: float
    prefill_steps: int
    decode_steps: int
    decode_slot_tokens: int
    peak_in_flight: int
    peak_kv_reserved_bytes: int
    peak_kv_actual_bytes: int
    weight_bytes: int
    budget_bytes: int

    def finished(self) -> list[Request]:
        """Requests that produced tokens (completed or truncated)."""
        return [
            r for r in self.records
            if r.finish_reason in ("completed", "length_cap")
        ]

    def metrics(self) -> dict:
        """Flat JSON-ready metrics (the JSONL payload).

        Every value is a pure function of the request trace and the
        memoized step costs — deterministic at any pool width.
        """
        done = self.finished()
        counts = {
            "completed": sum(
                1 for r in self.records if r.finish_reason == "completed"
            ),
            "truncated": sum(
                1 for r in self.records if r.finish_reason == "length_cap"
            ),
            "rejected": sum(
                1 for r in self.records if r.finish_reason == "rejected"
            ),
        }
        ttfts = np.array([r.ttft_us for r in done]) if done else np.array([0.0])
        tpots = [
            (r.finish_us - r.first_token_us) / (r.generated - 1)
            for r in done if r.generated > 1
        ]
        tokens = sum(r.generated for r in done)
        seconds = self.makespan_us / 1e6 if self.makespan_us > 0 else 1.0
        return {
            "requests": len(self.records),
            **counts,
            "tokens": int(tokens),
            "tokens_per_s": round(tokens / seconds, 4),
            "ttft_p50_ms": round(float(np.percentile(ttfts, 50)) / 1e3, 4),
            "ttft_p99_ms": round(float(np.percentile(ttfts, 99)) / 1e3, 4),
            "tpot_mean_ms": round(
                float(np.mean(tpots)) / 1e3 if tpots else 0.0, 4
            ),
            "makespan_s": round(seconds, 4),
            "prefill_steps": self.prefill_steps,
            "decode_steps": self.decode_steps,
            "mean_decode_batch": round(
                self.decode_slot_tokens / self.decode_steps, 4
            ) if self.decode_steps else 0.0,
            "peak_in_flight": self.peak_in_flight,
            "peak_kv_reserved_bytes": self.peak_kv_reserved_bytes,
            "peak_kv_actual_bytes": self.peak_kv_actual_bytes,
            "weight_bytes": self.weight_bytes,
            "budget_bytes": self.budget_bytes,
        }


# -- the sweep / CLI surface -------------------------------------------------


@dataclass(frozen=True)
class ServingPoint:
    """One (policy, arrival rate) scenario of a serving sweep."""

    policy: str
    rate_per_s: float
    num_requests: int = 10_000
    seed: int = 0
    max_batch: int = 8

    def describe(self) -> dict:
        """The point's identity as JSON-ready scalars."""
        return {
            "policy": self.policy,
            "rate_per_s": self.rate_per_s,
            "requests": self.num_requests,
            "seed": self.seed,
            "max_batch": self.max_batch,
        }


@dataclass
class ServingPointResult:
    """One executed serving point: identity + flat metrics."""

    point: ServingPoint
    metrics: dict
    result: ServingResult | None = None

    def to_json(self) -> dict:
        """The point's JSONL record."""
        return {"sweep": "serving", **self.point.describe(), **self.metrics}


def _run_point(
    point: ServingPoint,
    runtime: ServingRuntime,
    workload: ServingWorkload,
    ctx_quantum: int,
    model_config: LLMConfig | None,
) -> ServingPointResult:
    sim = ServingSimulator(
        runtime, model_config=model_config,
        max_batch=point.max_batch, ctx_quantum=ctx_quantum,
    )
    trace = generate_requests(
        point.num_requests, point.rate_per_s,
        workload=workload, seed=point.seed,
    )
    result = sim.run(trace, point.policy)
    return ServingPointResult(
        point=point, metrics=result.metrics(), result=result
    )


def _serving_worker(payload) -> dict:
    """Process-pool worker: one serving point, own runtime, shared
    disk recipes (module-level for pickling)."""
    point, config, options, hbm_budget, recipe_dir, workload, quantum = (
        payload
    )
    runtime = ServingRuntime(
        config, options=options, hbm_budget=hbm_budget,
        recipe_dir=recipe_dir,
    )
    return _run_point(point, runtime, workload, quantum, None).metrics


def run_serving(
    points: list[ServingPoint],
    *,
    config: GaudiConfig | None = None,
    options: CompilerOptions | None = None,
    hbm_budget: int | None = None,
    workload: ServingWorkload = DEFAULT_WORKLOAD,
    ctx_quantum: int = DEFAULT_CTX_QUANTUM,
    jobs: int = 1,
    stream=None,
    recipe_dir: "str | Path | None" = None,
    runtime: ServingRuntime | None = None,
) -> list[ServingPointResult]:
    """Execute serving points, streaming one JSON line per point.

    ``jobs > 1`` fans points over a process pool; workers share a
    disk recipe directory so each distinct step geometry compiles once
    fleet-wide, and ``pool.map`` preserves spec order — the JSONL is
    byte-identical at any width because every metric is a
    deterministic function of the point. Serial runs share one
    :class:`~repro.synapse.serving.ServingRuntime` (pass ``runtime``
    to share its geometry memo across calls).
    """
    if not points:
        raise DataError("run_serving needs at least one point")
    config = config or GaudiConfig()
    base = options if options is not None else default_compiler_options()

    opened = None
    if isinstance(stream, (str, Path)):
        opened = stream = open(stream, "w")
    try:
        results: list[ServingPointResult] = []
        if jobs > 1:
            from concurrent.futures import ProcessPoolExecutor

            tmp = None
            if recipe_dir is None:
                tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
                recipe_dir = tmp.name
            try:
                payloads = [
                    (p, config, base, hbm_budget, str(recipe_dir),
                     workload, ctx_quantum)
                    for p in points
                ]
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    for point, metrics in zip(
                        points, pool.map(_serving_worker, payloads)
                    ):
                        pr = ServingPointResult(point=point, metrics=metrics)
                        if stream is not None:
                            _emit_serving(stream, pr)
                        results.append(pr)
            finally:
                if tmp is not None:
                    tmp.cleanup()
            return results

        shared = runtime or ServingRuntime(
            config, options=base, hbm_budget=hbm_budget,
            recipe_dir=recipe_dir,
        )
        for point in points:
            pr = _run_point(point, shared, workload, ctx_quantum, None)
            if stream is not None:
                _emit_serving(stream, pr)
            results.append(pr)
        return results
    finally:
        if opened is not None:
            opened.close()


def _emit_serving(stream, pr: ServingPointResult) -> None:
    stream.write(json.dumps(pr.to_json()) + "\n")
    stream.flush()


def render_serving_table(
    results: list[ServingPointResult], *, title: str = "serving"
) -> str:
    """The human table for a list of serving points."""
    rows = []
    for r in results:
        m = r.metrics
        rows.append((
            r.point.policy,
            f"{r.point.rate_per_s:g}",
            f"{m['ttft_p50_ms']:.1f}",
            f"{m['ttft_p99_ms']:.1f}",
            f"{m['tpot_mean_ms']:.2f}",
            f"{m['tokens_per_s']:,.0f}",
            f"{m['mean_decode_batch']:.1f}",
            f"{m['completed']}/{m['truncated']}/{m['rejected']}",
        ))
    return render_table(
        ["policy", "req/s", "TTFT p50 (ms)", "TTFT p99 (ms)",
         "TPOT (ms)", "tokens/s", "mean batch", "done/trunc/rej"],
        rows,
        title=title,
    )


# -- the A15 ablation --------------------------------------------------------

#: arrival rates swept by A15 (requests/s): light load, near the knee,
#: and past saturation of the batch-8 decode loop
DEFAULT_ABLATION_RATES: tuple[float, ...] = (10.0, 20.0, 40.0)

#: requests per A15 point — small enough for CI, large enough for a
#: stable p99
DEFAULT_ABLATION_REQUESTS = 1500

#: throughput-parity tolerance for the headline check: continuous must
#: match static's tokens/s within this fraction while beating its p99
CONTINUOUS_THROUGHPUT_PARITY = 0.97

#: the "per-step compile cost is near zero" bar: fraction of step-cost
#: lookups served from the geometry memo
MIN_REPLAY_FRACTION = 0.98


@dataclass
class ServingAblationResult:
    """A15's measurements: the policy x rate grid + the KV-pressure
    scenario."""

    rows: list[ServingPointResult] = field(default_factory=list)
    runtime_info: dict = field(default_factory=dict)
    #: metrics of the tight-budget continuous run (cache pressure, not
    #: slots, bounds the batch)
    pressure: dict = field(default_factory=dict)
    pressure_max_batch: int = 0

    def result_for(self, policy: str, rate: float) -> ServingPointResult:
        """The grid point for ``(policy, rate)``."""
        for r in self.rows:
            if r.point.policy == policy and r.point.rate_per_s == rate:
                return r
        raise KeyError(f"no serving point for {policy!r} at {rate} req/s")

    def checks(self) -> list[ShapeCheck]:
        """A15's acceptance criteria."""
        top = max(r.point.rate_per_s for r in self.rows)
        static = self.result_for("static", top).metrics
        cont = self.result_for("continuous", top).metrics
        conserved = all(
            r.metrics["completed"] + r.metrics["truncated"]
            + r.metrics["rejected"] == r.metrics["requests"]
            for r in self.rows
        )
        parity = (
            cont["tokens_per_s"]
            >= static["tokens_per_s"] * CONTINUOUS_THROUGHPUT_PARITY
        )
        return [
            ShapeCheck(
                "A15: every arrival is exactly one of "
                "completed/truncated/rejected",
                conserved, str(conserved), "True",
            ),
            ShapeCheck(
                f"A15: continuous beats static on p99 TTFT at {top:g} "
                "req/s",
                cont["ttft_p99_ms"] < static["ttft_p99_ms"],
                f"{cont['ttft_p99_ms']:.1f} ms vs "
                f"{static['ttft_p99_ms']:.1f} ms",
                "continuous < static",
            ),
            ShapeCheck(
                "A15: continuous matches static throughput "
                f"(>= {CONTINUOUS_THROUGHPUT_PARITY:.0%})",
                parity,
                f"{cont['tokens_per_s']:,.0f} vs "
                f"{static['tokens_per_s']:,.0f} tokens/s",
                "parity or better",
            ),
            threshold_check(
                "A15: step costs replay from the geometry memo "
                "(per-step compile ~ zero)",
                self.runtime_info.get("replay_fraction", 0.0),
                MIN_REPLAY_FRACTION,
            ),
            ShapeCheck(
                "A15: under a tight budget the KV plan, not the slot "
                "count, bounds the batch",
                0 < self.pressure.get("peak_in_flight", 0)
                < self.pressure_max_batch
                and self.pressure.get("peak_kv_reserved_bytes", 0)
                + self.pressure.get("weight_bytes", 0)
                <= self.pressure.get("budget_bytes", 0),
                f"peak {self.pressure.get('peak_in_flight', 0)} in "
                f"flight of {self.pressure_max_batch} slots",
                "0 < peak < slots, residency <= budget",
            ),
        ]

    def render(self) -> str:
        """The policy x rate table plus the pressure scenario line."""
        table = render_serving_table(
            self.rows,
            title="A15: static vs continuous batching "
                  f"({self.rows[0].metrics['requests']} requests/point, "
                  "GPT decode)",
        )
        info = self.runtime_info
        lines = [
            table,
            f"step-cost oracle: {info.get('lookups', 0)} lookups, "
            f"{info.get('measured', 0)} measured geometries, "
            f"replay fraction {info.get('replay_fraction', 0.0):.1%}",
        ]
        if self.pressure:
            lines.append(
                "KV pressure (tight budget, continuous): peak "
                f"{self.pressure['peak_in_flight']} in flight of "
                f"{self.pressure_max_batch} slots, reserved KV "
                f"{self.pressure['peak_kv_reserved_bytes'] / (1 << 20):.1f}"
                f" MiB under a "
                f"{self.pressure['budget_bytes'] / (1 << 20):.1f} MiB "
                "budget",
            )
        return "\n".join(lines)


def run_serving_ablation(
    config: GaudiConfig | None = None,
    *,
    rates: tuple[float, ...] = DEFAULT_ABLATION_RATES,
    num_requests: int = DEFAULT_ABLATION_REQUESTS,
    max_batch: int = 8,
    seed: int = 0,
    workload: ServingWorkload = DEFAULT_WORKLOAD,
) -> ServingAblationResult:
    """A15: sweep arrival rates under static and continuous batching.

    Both policies replay the *same* seeded arrival trace per rate, so
    the comparison isolates the batching discipline. A second,
    tight-budget scenario (long-context small-vocab variant) shows KV
    residency — the planner's verdict — bounding the admissible batch
    below the slot count.
    """
    config = config or GaudiConfig()
    runtime = ServingRuntime(config)
    result = ServingAblationResult()
    points = [
        ServingPoint(
            policy=policy, rate_per_s=rate,
            num_requests=num_requests, seed=seed, max_batch=max_batch,
        )
        for rate in rates
        for policy in SERVING_POLICIES
    ]
    result.rows = run_serving(
        points, config=config, workload=workload, runtime=runtime,
    )
    result.runtime_info = runtime.info()

    # KV-pressure scenario: long contexts, small vocabulary (so the
    # prefill's logits don't mask the cache), and a budget that holds
    # the weights plus only a few requests' reserved KV
    from ..models.config import scaled

    pressure_cfg = scaled(paper_gpt_config(), vocab_size=512)
    pressure_batch = 16
    pressure_workload = ServingWorkload(
        prompt_range=(256, 768), output_range=(256, 512),
    )
    per_request = kv_bytes_per_token(pressure_cfg) * pressure_cfg.max_seq_len
    budget = serving_weight_bytes(pressure_cfg) + 5 * per_request
    pressure_runtime = ServingRuntime(config, hbm_budget=budget)
    sim = ServingSimulator(
        pressure_runtime, model_config=pressure_cfg,
        max_batch=pressure_batch,
    )
    trace = generate_requests(
        200, rates[0], workload=pressure_workload, seed=seed,
    )
    result.pressure = sim.run(trace, "continuous").metrics()
    result.pressure_max_batch = pressure_batch
    return result
