"""Roofline analysis: where each op sits against its engine's ceilings.

An "in-depth" companion to the profiler: for every scheduled compute
op, compute its arithmetic intensity (FLOPs per HBM byte) and compare
the achieved rate against the engine's roofline
``min(peak, intensity * bandwidth)``. The output quantifies the
paper's narrative — attention matmuls ride the MME's flat roof while
softmax's elementwise passes hang off the bandwidth slope and its
reductions sit far below even that (SIMD-hostile).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind, OpClass
from ..synapse.runtime import op_duration_us
from ..synapse.schedule import Schedule
from ..util.tabulate import render_table
from ..util.units import tflops


@dataclass(frozen=True)
class RooflinePoint:
    """One op's position in the roofline plane."""

    label: str
    engine: EngineKind
    src: str
    flops: float
    bytes_moved: int
    time_us: float

    @property
    def intensity(self) -> float:
        """FLOPs per byte of HBM traffic (inf for traffic-free ops)."""
        if self.bytes_moved <= 0:
            return float("inf")
        return self.flops / self.bytes_moved

    @property
    def achieved_tflops(self) -> float:
        """Sustained rate of this op."""
        return tflops(self.flops, self.time_us)

    def roof_tflops(self, config: GaudiConfig) -> float:
        """The op's ceiling: min(engine peak, intensity * bandwidth)."""
        if self.engine is EngineKind.MME:
            peak = config.mme.peak_tflops
        else:
            peak = config.tpc.peak_tflops(config.default_dtype)
        bw = config.hbm.effective_bandwidth
        if self.intensity == float("inf"):
            return peak
        return min(peak, self.intensity * bw / 1e12)

    def attainment(self, config: GaudiConfig) -> float:
        """achieved / roof in [0, ~1]."""
        roof = self.roof_tflops(config)
        if roof <= 0:
            return 0.0
        return self.achieved_tflops / roof


@dataclass
class RooflineReport:
    """Roofline points for a compiled schedule."""

    config: GaudiConfig
    points: list[RooflinePoint]

    def by_engine(self, engine: EngineKind) -> list[RooflinePoint]:
        """Points on one engine, slowest first."""
        return sorted(
            (p for p in self.points if p.engine is engine),
            key=lambda p: p.time_us, reverse=True,
        )

    def compute_bound(self, *, threshold: float = 1.0) -> list[RooflinePoint]:
        """Ops whose intensity exceeds the machine balance point."""
        balance = self._balance_intensity()
        return [p for p in self.points if p.intensity >= balance * threshold]

    def memory_bound(self, *, threshold: float = 1.0) -> list[RooflinePoint]:
        """Ops below the machine balance point."""
        balance = self._balance_intensity()
        return [p for p in self.points if p.intensity < balance * threshold]

    def _balance_intensity(self) -> float:
        peak = self.config.tpc.peak_tflops(self.config.default_dtype) * 1e12
        return peak / self.config.hbm.effective_bandwidth

    def render(self, *, top: int = 12) -> str:
        """Top-N ops by time with their roofline placement."""
        rows = []
        for p in sorted(self.points, key=lambda p: p.time_us,
                        reverse=True)[:top]:
            rows.append((
                p.label[:40],
                p.engine.value,
                f"{p.time_us / 1e3:.2f}",
                "inf" if p.intensity == float("inf")
                else f"{p.intensity:.1f}",
                f"{p.achieved_tflops:.2f}",
                f"{p.roof_tflops(self.config):.2f}",
                f"{p.attainment(self.config):.0%}",
            ))
        return render_table(
            ["op", "engine", "ms", "FLOP/B", "achieved TF", "roof TF",
             "attainment"],
            rows,
            title="Roofline: slowest ops vs their ceilings",
        )


def roofline_of_schedule(
    schedule: Schedule, config: GaudiConfig | None = None
) -> RooflineReport:
    """Build the roofline report for a compiled schedule."""
    config = config or GaudiConfig()
    from ..hw.device import GaudiDevice

    cost = GaudiDevice(config).cost_model
    points = []
    for op in schedule.ops:
        if op.engine not in (EngineKind.MME, EngineKind.TPC):
            continue
        flops = op.flops
        bytes_moved = sum(i.bytes_total for i in op.items)
        points.append(RooflinePoint(
            label=op.label,
            engine=op.engine,
            src=op.src,
            flops=flops,
            bytes_moved=bytes_moved,
            time_us=op_duration_us(cost, op),
        ))
    return RooflineReport(config, points)
