"""Figures 4-6: Transformer-layer profiling per attention variant.

Reproduces §3.3's layer study at the paper's shapes (sequence 2048,
batch 128, 6 heads, head dim 64):

* Fig 4 — softmax attention: softmax > 80% of TPC busy time, large MME
  idle gaps;
* Fig 5 — Linear Transformer (elu+1): ~30 ms, ~6x over softmax, good
  MME/TPC overlap;
* Fig 6 — Performer/FAVOR: ~80 ms, ~2x over softmax, with a residual
  MME blank while the TPC grinds through the q'/k' exponentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import ht
from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..models import TransformerLayer, paper_layer_config
from ..synapse import (
    CompilerOptions,
    ProfileResult,
    SynapseProfiler,
    ascii_timeline,
    default_compiler_options,
)
from ..synapse import disable_passes as _disable_passes
from .insights import describe_insights, gap_overlap_fraction
from .reference import (
    FIG4_SOFTMAX_TPC_SHARE_MIN,
    FIG5_LINEAR_SPEEDUP,
    FIG5_LINEAR_TOTAL_MS,
    FIG6_PERFORMER_SPEEDUP,
    FIG6_PERFORMER_TOTAL_MS,
    LAYER_STUDY_SHAPES,
    ShapeCheck,
    ratio_check,
    threshold_check,
)


def profile_layer(
    kind: str,
    *,
    feature_map: str = "elu1",
    config: GaudiConfig | None = None,
    options: CompilerOptions | None = None,
    batch: int | None = None,
    seq_len: int | None = None,
    include_backward: bool = False,
    disable_passes: tuple[str, ...] = (),
) -> ProfileResult:
    """Profile one Transformer layer at the paper's §3.3 shapes.

    ``disable_passes`` names compiler passes to turn off (see
    :data:`~repro.synapse.PASS_OPTION_FLAGS`) — the per-pass ablation
    hook used by ``run_pass_toggle_ablation``.
    """
    shapes = LAYER_STUDY_SHAPES
    batch = batch or shapes["batch"]
    seq_len = seq_len or shapes["seq_len"]
    if disable_passes:
        options = _disable_passes(
            options or default_compiler_options(), *disable_passes
        )
    layer_cfg = paper_layer_config(kind, feature_map=feature_map)
    layer = TransformerLayer(layer_cfg, materialize=False)
    with ht.record(f"layer-{kind}-{feature_map}", mode="symbolic") as rec:
        x = ht.input_tensor(
            (batch, seq_len, layer_cfg.d_model), name="x",
            requires_grad=include_backward,
        )
        out = layer(x)
        if include_backward:
            out.sum().backward()
    profiler = SynapseProfiler(config or GaudiConfig(), options)
    return profiler.profile(rec.graph)


@dataclass
class AttentionStudyResult:
    """Figures 4, 5 and 6 together."""

    softmax: ProfileResult
    linear: ProfileResult
    performer: ProfileResult

    @property
    def linear_speedup(self) -> float:
        """Fig 5's headline: softmax time / linear time."""
        return self.softmax.total_time_us / self.linear.total_time_us

    @property
    def performer_speedup(self) -> float:
        """Fig 6's headline: softmax time / Performer time."""
        return self.softmax.total_time_us / self.performer.total_time_us

    def checks(self) -> list[ShapeCheck]:
        """The §3.3 qualitative claims."""
        out = [
            threshold_check(
                "fig4: softmax share of TPC busy time",
                self.softmax.softmax_tpc_share,
                FIG4_SOFTMAX_TPC_SHARE_MIN,
            ),
            threshold_check(
                "fig4: MME idle fraction is large",
                self.softmax.mme_idle_fraction, 0.30,
            ),
            ShapeCheck(
                "fig4: MME idles while TPC runs softmax",
                gap_overlap_fraction(
                    self.softmax.timeline, EngineKind.MME, EngineKind.TPC
                ) > 0.8,
                f"{gap_overlap_fraction(self.softmax.timeline, EngineKind.MME, EngineKind.TPC):.1%}",
                "> 80%",
            ),
            ratio_check(
                "fig5: linear Transformer total (ms)",
                self.linear.total_time_ms, FIG5_LINEAR_TOTAL_MS, 0.40,
            ),
            ratio_check(
                "fig5: linear speedup over softmax",
                self.linear_speedup, FIG5_LINEAR_SPEEDUP, 0.35,
            ),
            threshold_check(
                "fig5: linear attention keeps MME busy (idle small)",
                self.linear.mme_idle_fraction, 0.30, upper=True,
            ),
            ratio_check(
                "fig6: Performer total (ms)",
                self.performer.total_time_ms, FIG6_PERFORMER_TOTAL_MS, 0.40,
            ),
            ratio_check(
                "fig6: Performer speedup over softmax",
                self.performer_speedup, FIG6_PERFORMER_SPEEDUP, 0.60,
            ),
            ShapeCheck(
                "fig6: Performer slower than linear (exp serialization)",
                self.performer.total_time_us > 1.2 * self.linear.total_time_us,
                f"{self.performer.total_time_ms:.1f} ms vs "
                f"{self.linear.total_time_ms:.1f} ms",
                "performer > 1.2x linear",
            ),
            ShapeCheck(
                "fig6: Performer MME idle exceeds linear's",
                self.performer.mme_idle_fraction > self.linear.mme_idle_fraction,
                f"{self.performer.mme_idle_fraction:.1%} vs "
                f"{self.linear.mme_idle_fraction:.1%}",
                "performer > linear",
            ),
        ]
        return out

    def render(self, *, width: int = 100) -> str:
        """All three 'figures' as ASCII timelines + narratives."""
        blocks = []
        for fig, res in (("Figure 4 (softmax attention)", self.softmax),
                         ("Figure 5 (linear Transformer)", self.linear),
                         ("Figure 6 (Performer/FAVOR)", self.performer)):
            blocks.append(f"== {fig}: total {res.total_time_ms:.2f} ms ==")
            blocks.append(ascii_timeline(res.timeline, width=width))
            blocks.append(describe_insights(res.timeline))
            blocks.append("")
        return "\n".join(blocks)


def run_attention_study(
    config: GaudiConfig | None = None,
    *,
    include_backward: bool = False,
) -> AttentionStudyResult:
    """Profile the three §3.3 attention variants."""
    return AttentionStudyResult(
        softmax=profile_layer("softmax", config=config,
                              include_backward=include_backward),
        linear=profile_layer("linear", config=config,
                             include_backward=include_backward),
        performer=profile_layer("performer", config=config,
                                include_backward=include_backward),
    )
