"""Figure 7: activation functions in the linearized Transformer.

§3.3 swaps the Linear Transformer's feature-map activation for ReLU,
LeakyReLU, GELU and GLU at the same layer shapes. Findings to
reproduce: ReLU / LeakyReLU / GELU cluster within a few percent of
each other with good MME/TPC overlap; GLU is the slowest and opens an
MME blank because SynapseAI recompiles for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..synapse import ProfileResult, ascii_timeline
from .attention_study import profile_layer
from .reference import FIG7_ACTIVATION_MS, ShapeCheck, threshold_check

ACTIVATIONS = ("relu", "leaky_relu", "gelu", "glu")


@dataclass
class ActivationStudyResult:
    """Fig 7's four per-activation profiles."""

    profiles: dict[str, ProfileResult]

    def total_ms(self, activation: str) -> float:
        """Makespan of one variant."""
        return self.profiles[activation].total_time_ms

    def checks(self) -> list[ShapeCheck]:
        """Fig 7's qualitative claims."""
        relu = self.total_ms("relu")
        leaky = self.total_ms("leaky_relu")
        gelu = self.total_ms("gelu")
        glu = self.total_ms("glu")
        fast_cluster = max(relu, leaky, gelu) / min(relu, leaky, gelu) - 1.0
        paper_glu_overhead = (
            FIG7_ACTIVATION_MS["glu"] / FIG7_ACTIVATION_MS["relu"] - 1.0
        )
        glu_overhead = glu / min(relu, leaky, gelu) - 1.0
        out = [
            threshold_check(
                "fig7: relu/leaky_relu/gelu cluster within 10%",
                fast_cluster, 0.10, upper=True,
            ),
            ShapeCheck(
                "fig7: GLU is the slowest activation",
                glu > max(relu, leaky, gelu),
                f"glu {glu:.1f} ms vs max(others) {max(relu, leaky, gelu):.1f} ms",
                "glu slowest (paper: 32.6 vs 29.7-30.2 ms)",
            ),
            ShapeCheck(
                "fig7: GLU overhead in the paper's band",
                0.5 * paper_glu_overhead
                <= glu_overhead
                <= 3.0 * paper_glu_overhead,
                f"{glu_overhead:.1%}",
                f"~{paper_glu_overhead:.1%} (x0.5..x3)",
            ),
            ShapeCheck(
                "fig7: GLU run includes a host recompilation",
                bool(self.profiles["glu"].timeline.engine_events(
                    EngineKind.HOST
                )),
                "present" if self.profiles["glu"].timeline.engine_events(
                    EngineKind.HOST
                ) else "absent",
                "recompilation event",
            ),
            ShapeCheck(
                "fig7: only GLU recompiles",
                all(
                    not self.profiles[a].timeline.engine_events(EngineKind.HOST)
                    for a in ("relu", "leaky_relu", "gelu")
                ),
                "others clean",
                "no recompilation for relu/leaky_relu/gelu",
            ),
        ]
        for act in ACTIVATIONS:
            # the three fast variants overlap well (paper: "The execution
            # of MME and TPC has a good overlap")
            if act != "glu":
                out.append(threshold_check(
                    f"fig7: {act} keeps MME idle below 30%",
                    self.profiles[act].mme_idle_fraction, 0.30, upper=True,
                ))
        return out

    def render(self, *, width: int = 100) -> str:
        """Per-activation summary + trace lanes."""
        blocks = []
        for act in ACTIVATIONS:
            res = self.profiles[act]
            blocks.append(
                f"== Figure 7 [{act}]: total {res.total_time_ms:.2f} ms "
                f"(paper {FIG7_ACTIVATION_MS[act]:.1f} ms) =="
            )
            blocks.append(ascii_timeline(res.timeline, width=width))
            blocks.append("")
        return "\n".join(blocks)

    def rows(self) -> list[tuple[str, float, float]]:
        """(activation, measured ms, paper ms) rows."""
        return [
            (act, self.total_ms(act), FIG7_ACTIVATION_MS[act])
            for act in ACTIVATIONS
        ]


def run_activation_study(
    config: GaudiConfig | None = None,
) -> ActivationStudyResult:
    """Profile the four Fig 7 feature-map activations."""
    profiles = {
        act: profile_layer("linear", feature_map=act, config=config)
        for act in ACTIVATIONS
    }
    return ActivationStudyResult(profiles)
