"""Trace analytics behind the paper's qualitative observations.

The paper's end-to-end findings are statements about *who waits for
whom*: "blank areas in the MME operating area", "TPC is obviously
busy", "no good overlap between MME and TPC". This module turns those
into measurable quantities over a :class:`~repro.synapse.trace.Timeline`:

* :func:`gap_overlap_fraction` — of engine A's idle time, how much
  coincides with engine B being busy (A waiting on B);
* :func:`overlap_fraction` — how much of the makespan both engines
  compute simultaneously (the "good overlap" of Fig 5);
* :func:`imbalance_index` — busy-time asymmetry between MME and TPC;
* :func:`bottleneck_report` — top sources per engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.costmodel import EngineKind
from ..hw.des import Interval
from ..synapse.trace import Timeline
from ..util.units import fmt_time_us


def _busy_intervals(timeline: Timeline, engine: EngineKind) -> list[Interval]:
    return [
        Interval(ev.start_us, ev.end_us, ev.name)
        for ev in timeline.engine_events(engine)
    ]


def _intersection(a: list[Interval], b: list[Interval]) -> float:
    """Total overlap between two sorted interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i].start, b[j].start)
        hi = min(a[i].end, b[j].end)
        if hi > lo:
            total += hi - lo
        if a[i].end <= b[j].end:
            i += 1
        else:
            j += 1
    return total


def gap_overlap_fraction(
    timeline: Timeline, idle_engine: EngineKind, busy_engine: EngineKind
) -> float:
    """Fraction of ``idle_engine``'s gaps during which ``busy_engine``
    is executing — "the MME is idle waiting for the TPC"."""
    gaps = timeline.gaps(idle_engine)
    total_gap = sum(g.duration for g in gaps)
    if total_gap <= 0:
        return 0.0
    busy = _busy_intervals(timeline, busy_engine)
    return _intersection(gaps, busy) / total_gap


def overlap_fraction(timeline: Timeline) -> float:
    """Fraction of the makespan where MME and TPC compute simultaneously."""
    total = timeline.total_time_us
    if total <= 0:
        return 0.0
    return _intersection(
        _busy_intervals(timeline, EngineKind.MME),
        _busy_intervals(timeline, EngineKind.TPC),
    ) / total


def imbalance_index(timeline: Timeline) -> float:
    """|busy_MME - busy_TPC| / (busy_MME + busy_TPC) in [0, 1].

    0 means perfectly balanced engines; 1 means one engine does all the
    work — the paper's "workload between MME and TPC is unbalanced".
    """
    mme = timeline.busy_time_us(EngineKind.MME)
    tpc = timeline.busy_time_us(EngineKind.TPC)
    if mme + tpc <= 0:
        return 0.0
    return abs(mme - tpc) / (mme + tpc)


@dataclass(frozen=True)
class BottleneckEntry:
    """One attributed slice of an engine's busy time."""

    src: str
    busy_us: float
    share: float


def bottleneck_report(
    timeline: Timeline, engine: EngineKind, *, top: int = 5
) -> list[BottleneckEntry]:
    """Top sources of busy time on ``engine``, largest first."""
    busy = timeline.busy_time_us(engine)
    if busy <= 0:
        return []
    by_src = sorted(
        timeline.busy_by_src(engine).items(), key=lambda kv: kv[1], reverse=True
    )
    return [
        BottleneckEntry(src, us, us / busy) for src, us in by_src[:top]
    ]


def describe_insights(timeline: Timeline) -> str:
    """Multi-line narrative of the §3/§4-style observations."""
    lines = []
    mme_idle = timeline.idle_fraction(EngineKind.MME)
    tpc_idle = timeline.idle_fraction(EngineKind.TPC)
    lines.append(
        f"MME idle {mme_idle:.1%} / TPC idle {tpc_idle:.1%} "
        f"(imbalance index {imbalance_index(timeline):.2f})"
    )
    waiting = gap_overlap_fraction(timeline, EngineKind.MME, EngineKind.TPC)
    lines.append(
        f"{waiting:.1%} of MME idle time coincides with TPC execution"
    )
    lines.append(
        f"simultaneous MME+TPC compute covers "
        f"{overlap_fraction(timeline):.1%} of the makespan"
    )
    for engine in (EngineKind.MME, EngineKind.TPC):
        entries = bottleneck_report(timeline, engine, top=3)
        if entries:
            detail = ", ".join(
                f"{e.src} {e.share:.0%} ({fmt_time_us(e.busy_us)})"
                for e in entries
            )
            lines.append(f"{engine.value} busy time: {detail}")
    return "\n".join(lines)
