"""Property tests over the whole op registry.

For every registered op: shape inference must agree with functional
compute on random small inputs, work items must be well-formed, and
the Table 1 invariant (only matmul on the MME) must hold structurally.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.costmodel import EngineKind, OpClass
from repro.hw.dtypes import DType
from repro.synapse.ops import op, op_names, work_item_for

# ops needing special argument handling in the generic harness
UNARY_SIMPLE = [
    "neg", "abs", "square", "relu", "ones_like", "zeros_like", "cast",
    "exp", "sigmoid", "tanh", "gelu", "elu", "step_ge0", "leaky_relu",
]
UNARY_POSITIVE = ["sqrt", "rsqrt", "log"]
BINARY_SIMPLE = ["add", "sub", "mul", "maximum", "eq"]
SCALAR_ATTR = {"smul": {"alpha": 2.0}, "sadd": {"alpha": -1.0},
               "spow": {"alpha": 2.0}, "fill": {"value": 3.0},
               "dropout": {"p": 0.5, "seed": 1}}

small_shapes = st.lists(st.integers(1, 6), min_size=1, max_size=4).map(tuple)


def rand(shape, positive=False, seed=0):
    rng = np.random.default_rng(seed + sum(shape))
    arr = rng.normal(size=shape).astype(np.float32)
    return np.abs(arr) + 0.5 if positive else arr


class TestShapeComputeAgreement:
    @pytest.mark.parametrize("name", UNARY_SIMPLE + UNARY_POSITIVE)
    @given(shape=small_shapes)
    @settings(max_examples=15, deadline=None)
    def test_unary(self, name, shape):
        opdef = op(name)
        x = rand(shape, positive=name in UNARY_POSITIVE)
        attrs = {"slope": 0.1} if name == "leaky_relu" else {}
        inferred = opdef.infer_shape([shape], attrs)
        out = opdef.compute([x], attrs)
        assert tuple(np.shape(out)) == inferred

    @pytest.mark.parametrize("name", BINARY_SIMPLE + ["div"])
    @given(shape=small_shapes)
    @settings(max_examples=15, deadline=None)
    def test_binary_same_shape(self, name, shape):
        opdef = op(name)
        x, y = rand(shape, seed=1), rand(shape, positive=name == "div",
                                         seed=2)
        inferred = opdef.infer_shape([shape, shape], {})
        out = opdef.compute([x, y], {})
        assert tuple(np.shape(out)) == inferred

    @pytest.mark.parametrize("name", sorted(SCALAR_ATTR))
    @given(shape=small_shapes)
    @settings(max_examples=10, deadline=None)
    def test_scalar_attr_ops(self, name, shape):
        opdef = op(name)
        attrs = SCALAR_ATTR[name]
        x = rand(shape, positive=name == "spow")
        inferred = opdef.infer_shape([shape], attrs)
        out = opdef.compute([x], attrs)
        assert tuple(np.shape(out)) == inferred

    @given(
        b=st.integers(1, 3), m=st.integers(1, 6),
        k=st.integers(1, 6), n=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_matmul(self, b, m, k, n):
        opdef = op("matmul")
        a = rand((b, m, k))
        bb = rand((b, k, n))
        inferred = opdef.infer_shape([(b, m, k), (b, k, n)], {})
        out = opdef.compute([a, bb], {})
        assert tuple(out.shape) == inferred == (b, m, n)

    @given(shape=st.lists(st.integers(1, 5), min_size=2, max_size=4).map(tuple),
           axis=st.integers(-1, 0), keepdims=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_reductions(self, shape, axis, keepdims):
        for name in ("sum", "max", "mean"):
            opdef = op(name)
            attrs = {"axis": axis, "keepdims": keepdims}
            inferred = opdef.infer_shape([shape], attrs)
            out = opdef.compute([rand(shape)], attrs)
            assert tuple(np.shape(out)) == inferred

    @given(shape=st.lists(st.integers(1, 5), min_size=2, max_size=4).map(tuple))
    @settings(max_examples=15, deadline=None)
    def test_softmax_composites(self, shape):
        for name in ("softmax", "log_softmax"):
            opdef = op(name)
            out = opdef.compute([rand(shape)], {"axis": -1})
            assert tuple(out.shape) == opdef.infer_shape([shape], {"axis": -1})
            if name == "softmax":
                np.testing.assert_allclose(out.sum(-1), 1.0, rtol=1e-5)


class TestRegistryInvariants:
    def test_every_op_has_callables(self):
        for name in op_names():
            opdef = op(name)
            assert callable(opdef.infer_shape), name
            assert callable(opdef.compute), name

    def test_table1_invariant_structural(self):
        # Table 1 extended by the kernel pack: the MME runs matmul plus
        # the two matmul-shaped attention offloads, and nothing that is
        # not MATMUL-class ever maps to the MME.
        mme_ops = [n for n in op_names()
                   if op(n).engine is EngineKind.MME]
        assert mme_ops == ["exp_basis_mm", "flash_attention", "matmul"]
        for name in mme_ops:
            assert op(name).op_class is OpClass.MATMUL, name

    def test_special_ops_declare_their_function(self):
        for name in op_names():
            opdef = op(name)
            if opdef.op_class is OpClass.SPECIAL:
                assert opdef.special_fn, name

    def test_composites_are_exactly_the_lowered_set(self):
        from repro.synapse.lowering import LOWERINGS

        composites = {n for n in op_names() if op(n).composite}
        assert composites == set(LOWERINGS)

    def test_view_ops_move_no_bytes(self):
        for name in ("reshape", "broadcast_to", "slice_rows"):
            opdef = op(name)
            assert not opdef.reads_inputs and not opdef.writes_output, name

    @given(shape=small_shapes)
    @settings(max_examples=10, deadline=None)
    def test_work_items_well_formed(self, shape):
        for name in UNARY_SIMPLE:
            item = work_item_for(name, [shape], shape, DType.BF16, {})
            assert item.flops >= 0
            assert item.bytes_read >= 0 and item.bytes_written >= 0
            assert item.elements == math.prod(shape)

    def test_work_item_dtype_scales_bytes(self):
        a = work_item_for("add", [(8,), (8,)], (8,), DType.BF16, {})
        b = work_item_for("add", [(8,), (8,)], (8,), DType.FP32, {})
        assert b.bytes_total == 2 * a.bytes_total
