"""Tests for TPC local-memory accounting and dtype-aware tiling."""

import pytest

from repro.hw.config import TPCClusterConfig
from repro.hw.dtypes import DType
from repro.tpc import REGISTRY, TPCSimulator
from repro.tpc.memory import (
    LocalMemory,
    from_config,
    max_k_chunk,
    max_k_chunk_for_lanes,
)
from repro.util.errors import KernelError


class TestLocalMemory:
    def test_paper_capacities(self):
        mem = from_config(TPCClusterConfig())
        assert mem.scalar_capacity == 1024       # 1 KB (paper 2.2)
        assert mem.vector_capacity == 80 * 1024  # 80 KB

    def test_alloc_free_cycle(self):
        mem = LocalMemory()
        mem.alloc("a", 1000)
        assert mem.vector_free_bytes() == 80 * 1024 - 1000
        mem.free("a")
        assert mem.vector_free_bytes() == 80 * 1024

    def test_vector_overflow_rejected(self):
        mem = LocalMemory()
        mem.alloc("big", 80 * 1024)
        with pytest.raises(KernelError, match="exhausted"):
            mem.alloc("one_more", 1)

    def test_scalar_bank_separate(self):
        mem = LocalMemory()
        mem.alloc("s", 1024, bank="scalar")
        assert mem.scalar_free_bytes() == 0
        # vector bank unaffected
        mem.alloc("v", 80 * 1024)

    def test_double_alloc_rejected(self):
        mem = LocalMemory()
        mem.alloc("x", 10)
        with pytest.raises(KernelError, match="already allocated"):
            mem.alloc("x", 10)

    def test_unknown_free_rejected(self):
        with pytest.raises(KernelError, match="unknown buffer"):
            LocalMemory().free("ghost")

    def test_bad_bank(self):
        with pytest.raises(KernelError, match="bank"):
            LocalMemory().alloc("x", 1, bank="l3")

    def test_negative_rejected(self):
        with pytest.raises(KernelError):
            LocalMemory().alloc("x", -1)


class TestMaxKChunk:
    def test_bf16_reference_tile(self):
        # 256 * (128 lanes + 32 rows) * 2 B = exactly the 80 KB bank
        assert max_k_chunk_for_lanes(128, 32) == 256

    def test_fp32_shrinks(self):
        assert max_k_chunk_for_lanes(64, 32) == 192
        assert max_k_chunk(DType.FP32, 64, 32) == 192

    def test_int8_wider_lanes_offset_thinner_elements(self):
        # int8 doubles the lane count AND halves the element size: the
        # B-tile bytes stay put, so the tile depth barely moves
        assert max_k_chunk(DType.INT8, 256, 32) == 256

    def test_alignment(self):
        k = max_k_chunk_for_lanes(128, 32, alignment=32)
        assert k % 32 == 0

    def test_invalid_lanes(self):
        with pytest.raises(KernelError, match="lane count"):
            max_k_chunk_for_lanes(100, 32)

    def test_impossible_budget(self):
        with pytest.raises(KernelError):
            max_k_chunk_for_lanes(128, 32, vector_capacity=64)


class TestDtypeAwareBmm:
    def test_fp32_kernel_slower_per_flop(self):
        # fewer lanes and a smaller tile: fp32 must sustain well under
        # half the bf16 rate
        shapes = {"a": (8, 512, 512), "b": (8, 512, 512)}
        kernel = REGISTRY.create("bmm")
        bf16 = TPCSimulator(dtype=DType.BF16).launch(kernel, shapes=shapes)
        fp32 = TPCSimulator(dtype=DType.FP32).launch(kernel, shapes=shapes)
        assert fp32.achieved_tflops < 0.6 * bf16.achieved_tflops

    def test_calibration_unchanged_for_bf16(self):
        # the tiling refactor must not move the Table 2 numbers
        kernel = REGISTRY.create("bmm")
        r = TPCSimulator(dtype=DType.BF16).launch(
            kernel, shapes={"a": (64, 512, 512), "b": (64, 512, 512)}
        )
        assert r.achieved_tflops == pytest.approx(2.13, rel=0.10)
