"""Property-based tests: compiler/runtime invariants on random graphs.

A hypothesis strategy builds random-but-valid op DAGs through the ht
frontend (mixing matmuls, elementwise chains, reductions, softmax);
the properties assert the simulator's core contracts:

* compiled schedules respect dependencies and program order;
* engines never run two ops at once, in either issue mode;
* reordered execution is never slower than in-order;
* the functional executor agrees with the eager frontend for every
  random graph, with fusion on or off;
* the memory plan's peak is at least the persistent footprint and
  never below any single live value.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.hw.device import GaudiDevice
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    Runtime,
    execute_graph,
    execute_schedule,
    validate_no_engine_overlap,
)

# -- random-graph construction ---------------------------------------------------

UNARY = ("exp", "relu", "sqrtabs", "square", "neg", "sigmoid")
BINARY = ("add", "sub", "mul", "maximum")


def build_random_program(draw_ops, dims):
    """Build a frontend program from a list of op codes; returns output."""
    rows, inner, cols = dims
    rng = np.random.default_rng(12345)
    a = ht.tensor(rng.normal(size=(rows, inner)).astype(np.float32), name="a")
    b = ht.tensor(rng.normal(size=(inner, cols)).astype(np.float32), name="b")
    x = F.matmul(a, b)
    pool = [x]
    for code in draw_ops:
        kind, idx = code
        src = pool[idx % len(pool)]
        if kind < len(UNARY):
            name = UNARY[kind]
            if name == "sqrtabs":
                out = F.sqrt(F.add_scalar(F.abs(src), 0.1))
            else:
                out = getattr(F, name)(src)
        elif kind < len(UNARY) + len(BINARY):
            other = pool[(idx + 1) % len(pool)]
            out = getattr(F, BINARY[kind - len(UNARY)])(src, other)
        elif kind == len(UNARY) + len(BINARY):
            out = F.softmax(src, axis=-1)
        else:
            out = F.mul_scalar(src, 0.5)
        pool.append(out)
    total = pool[0]
    for t in pool[1:]:
        total = F.add(total, t)
    return F.mean(total)


program_strategy = st.lists(
    st.tuples(st.integers(0, len(UNARY) + len(BINARY) + 1),
              st.integers(0, 31)),
    min_size=1, max_size=12,
)
dims_strategy = st.tuples(
    st.integers(2, 12), st.integers(2, 12), st.integers(2, 12)
)


def record_random(ops, dims):
    with ht.record("random", mode="concrete") as rec:
        out = build_random_program(ops, dims)
        eager = out.numpy()
    return rec.graph, eager


class TestScheduleInvariants:
    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_deps_point_backwards_and_are_complete(self, ops, dims, fuse):
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=fuse)
        ).compile(graph)
        produced_at = {}
        for op in schedule.ops:
            assert all(d < op.index for d in op.deps)
            for vid in op.reads:
                if vid in produced_at:
                    # the producer (or a DMA of it) must be a dependency
                    assert any(
                        d >= produced_at[vid] for d in op.deps
                    ), f"{op.label} misses dep on value {vid}"
            for vid in op.writes:
                produced_at[vid] = op.index

    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_no_engine_overlap_either_mode(self, ops, dims, reorder):
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        result = Runtime(GaudiDevice()).execute(schedule, reorder=reorder)
        validate_no_engine_overlap(result.timeline)

    @given(program_strategy, dims_strategy)
    @settings(max_examples=25, deadline=None)
    def test_reorder_never_slower(self, ops, dims):
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        t_in = Runtime(GaudiDevice()).execute(schedule).total_time_us
        t_re = Runtime(GaudiDevice()).execute(
            schedule, reorder=True
        ).total_time_us
        assert t_re <= t_in * 1.001

    @given(program_strategy, dims_strategy)
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounded_by_serial_sum(self, ops, dims):
        """Parallel execution can't exceed the sum of op durations."""
        from repro.synapse.runtime import op_duration_us

        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        device = GaudiDevice()
        serial = sum(
            op_duration_us(device.cost_model, op) for op in schedule.ops
        )
        result = Runtime(device).execute(schedule)
        assert result.total_time_us <= serial + 1e-6
        # and it is at least the longest single op
        longest = max(
            op_duration_us(device.cost_model, op) for op in schedule.ops
        )
        assert result.total_time_us >= longest - 1e-6


class TestContentionInvariants:
    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_contended_never_faster(self, ops, dims, reorder):
        """Sharing bandwidth can stretch a schedule, never beat it."""
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        on = Runtime(GaudiDevice()).execute(
            schedule, reorder=reorder, hbm_contention=True
        )
        off = Runtime(GaudiDevice()).execute(
            schedule, reorder=reorder, hbm_contention=False
        )
        assert on.total_time_us >= off.total_time_us * (1 - 1e-9) - 1e-6
        assert on.contention_stall_us >= 0.0

    @given(program_strategy, dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_unshared_fluid_reproduces_replay(self, ops, dims):
        """The fluid event loop with sharing off agrees with the
        closed-form replay on every random graph (same events, ulp-level
        timing agreement) — the two memory models share one truth."""
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        legacy = Runtime(GaudiDevice()).execute(
            schedule, hbm_contention=False
        )
        rt = Runtime(GaudiDevice())
        events, stall = rt._execute_contended(
            schedule, list(legacy.issue_order), rt.device.now, shared=False
        )
        assert stall == pytest.approx(0.0, abs=1e-6)
        got = sorted(
            (ev.name, ev.engine.value, ev.start_us, ev.dur_us)
            for ev in events
        )
        want = sorted(
            (ev.name, ev.engine.value, ev.start_us, ev.dur_us)
            for ev in legacy.timeline.events
        )
        assert len(got) == len(want)
        for (gn, ge, gs, gd), (wn, we, ws, wd) in zip(got, want):
            assert gn == wn and ge == we
            assert gs == pytest.approx(ws, rel=1e-9, abs=1e-6)
            assert gd == pytest.approx(wd, rel=1e-9, abs=1e-6)

    @given(program_strategy, dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_aggregate_drain_rate_bounded(self, ops, dims):
        """No instant grants more than the effective HBM bandwidth."""
        from repro.hw import BandwidthArbiter

        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        device = GaudiDevice()
        bandwidth = device.cost_model.config.hbm.effective_bandwidth
        captured: list[BandwidthArbiter] = []
        original = BandwidthArbiter.__init__

        def spy(self, *args, **kwargs):
            original(self, *args, **kwargs)
            captured.append(self)

        BandwidthArbiter.__init__ = spy
        try:
            Runtime(device).execute(schedule, hbm_contention=True)
        finally:
            BandwidthArbiter.__init__ = original
        assert captured
        for seg in captured[0].rate_log:
            assert seg.total_rate <= bandwidth * (1 + 1e-12)


class TestExecutorEquivalence:
    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_executor_matches_eager(self, ops, dims, fuse):
        graph, eager = record_random(ops, dims)
        env = execute_graph(
            graph,
            {v.name: _input_array(v, dims) for v in graph.graph_inputs()},
        )
        final = graph.nodes[-1].output
        np.testing.assert_allclose(env[final], eager, rtol=1e-4, atol=1e-5)


def _input_array(value, dims):
    rng = np.random.default_rng(12345)
    rows, inner, cols = dims
    a = rng.normal(size=(rows, inner)).astype(np.float32)
    b = rng.normal(size=(inner, cols)).astype(np.float32)
    return a if value.name == "a" else b


class TestSchedulerPolicyInvariants:
    @given(program_strategy, dims_strategy,
           st.sampled_from(["inorder", "reorder", "lookahead"]),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_every_policy_emits_a_valid_order(self, ops, dims, policy,
                                              sliced):
        """All three issue policies emit a dependency-respecting
        permutation, with or without TPC slicing, and never overlap an
        engine with itself."""
        graph, _ = record_random(ops, dims)
        options = (CompilerOptions(tpc_slice_ops=True, tpc_slice_min_us=0.0)
                   if sliced else CompilerOptions())
        schedule = GraphCompiler(options=options).compile(graph)
        result = Runtime(GaudiDevice()).execute(schedule, scheduler=policy)
        order = list(result.issue_order)
        assert sorted(order) == list(range(len(schedule.ops)))
        position = {idx: pos for pos, idx in enumerate(order)}
        for op in schedule.ops:
            assert all(position[d] < position[op.index] for d in op.deps)
        validate_no_engine_overlap(result.timeline)

    @given(program_strategy, dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_explicit_policies_match_legacy_bools(self, ops, dims):
        """``scheduler=`` names reproduce the legacy ``reorder`` bool."""
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        for policy, legacy in (("inorder", False), ("reorder", True)):
            named = Runtime(GaudiDevice()).execute(
                schedule, scheduler=policy
            )
            boolean = Runtime(GaudiDevice()).execute(
                schedule, reorder=legacy
            )
            assert list(named.issue_order) == list(boolean.issue_order)
            assert named.total_time_us == pytest.approx(
                boolean.total_time_us
            )

    @given(program_strategy, dims_strategy)
    @settings(max_examples=20, deadline=None)
    def test_sliced_numerics_match_eager(self, ops, dims):
        """TPC slicing is a pure scheduling transform: the sliced
        schedule reproduces the eager frontend on every random graph."""
        graph, eager = record_random(ops, dims)
        schedule = GraphCompiler(options=CompilerOptions(
            tpc_slice_ops=True, tpc_slice_min_us=0.0
        )).compile(graph)
        env = execute_schedule(
            schedule,
            {v.name: _input_array(v, dims) for v in graph.graph_inputs()},
        )
        out = env[schedule.graph.nodes[-1].output]
        np.testing.assert_allclose(out, eager, rtol=1e-4, atol=1e-5)


class TestMemoryPlanInvariants:
    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_peak_bounds(self, ops, dims, fuse):
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=fuse)
        ).compile(graph)
        plan = schedule.memory
        assert plan.peak_bytes >= plan.persistent_bytes
        lowered = schedule.graph  # compilation rewrites value ids
        biggest = max(
            (lowered.value(vid).nbytes
             for op in schedule.ops for vid in op.writes),
            default=0,
        )
        assert plan.peak_bytes >= biggest

    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_memory_timeline_agrees_with_planner(self, ops, dims, fuse):
        from repro.synapse import memory_timeline

        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=fuse)
        ).compile(graph)
        tl = memory_timeline(schedule)
        assert tl.peak_bytes == schedule.memory.peak_bytes
        assert all(s.live_bytes >= tl.persistent_bytes for s in tl.samples)

    @given(program_strategy, dims_strategy)
    @settings(max_examples=20, deadline=None)
    def test_fusion_never_increases_peak(self, ops, dims):
        graph, _ = record_random(ops, dims)
        fused = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=True)
        ).compile(graph)
        unfused = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=False)
        ).compile(graph)
        assert fused.memory.peak_bytes <= unfused.memory.peak_bytes
