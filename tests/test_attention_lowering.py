"""The attention_lowering pass: numerics, byte-identity, cache keying.

Property-based coverage of the kernel pack's compiler contract:

* ``fused`` and ``flash`` reproduce the naive cone bit for bit on
  random attention geometries (their graph-level compute is exact
  softmax);
* ``windowed`` matches the banded numpy oracle built from the same
  keep mask the op declares;
* ``naive`` leaves the compiled schedule byte-identical to a
  default-options compile — existing recipes and traces are untouched;
* the kernel choice re-keys *both* recipe-cache tiers, so a cached
  naive recipe can never be replayed for a flash compile (and vice
  versa);
* the lint rules guarding the rewritten graphs fire on malformed
  cones and stay quiet on the pass's own output.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.hw.config import GaudiConfig
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    RecipeCache,
    execute_schedule,
    lint_graph,
    lint_schedule,
    recipe_key,
)
from repro.synapse.ops import attention_keep_mask
from repro.synapse.passes.attention import (
    ATTENTION_LOWERINGS,
    FLASH_K_BLOCK,
    FLASH_Q_BLOCK,
    find_attention_cones,
)
from repro.util.errors import ConfigError


def record_attention(batch, seq, dim, *, scale=None, softmax_axis=-1,
                     extra_consumer=False, name="attn"):
    """Record a concrete QK^T -> [scale] -> softmax -> V program."""
    rng = np.random.default_rng(batch * 1009 + seq * 31 + dim)
    q_np = rng.normal(size=(batch, seq, dim)).astype(np.float32)
    k_np = rng.normal(size=(batch, seq, dim)).astype(np.float32)
    v_np = rng.normal(size=(batch, seq, dim)).astype(np.float32)
    with ht.record(name, mode="concrete") as rec:
        q = ht.tensor(q_np, name="q")
        k = ht.tensor(k_np, name="k")
        v = ht.tensor(v_np, name="v")
        scores = F.matmul(q, k, transpose_b=True)
        if scale is not None:
            scores = F.mul_scalar(scores, scale)
        probs = F.softmax(scores, axis=softmax_axis)
        F.matmul(probs, v)
        if extra_consumer:
            F.mean(probs)
    return rec.graph, {"q": q_np, "k": k_np, "v": v_np}


def compile_and_run(graph, feeds, **option_kwargs):
    schedule = GraphCompiler(
        options=CompilerOptions(**option_kwargs)
    ).compile(graph)
    env = execute_schedule(schedule, feeds)
    return schedule, env[schedule.graph.nodes[-1].output]


geometry = st.tuples(
    st.integers(1, 3), st.integers(4, 40), st.integers(2, 12)
)


class TestLoweringNumerics:
    @given(geometry, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_fused_and_flash_match_naive_exactly(self, dims, scaled):
        batch, seq, dim = dims
        graph, feeds = record_attention(
            batch, seq, dim, scale=dim ** -0.5 if scaled else None
        )
        _, naive = compile_and_run(graph, feeds, attention_lowering="naive")
        for mode in ("fused", "flash"):
            _, out = compile_and_run(graph, feeds, attention_lowering=mode)
            assert np.array_equal(out, naive), (
                f"{mode} lowering diverged from the naive cone at "
                f"batch={batch} seq={seq} dim={dim}"
            )

    @given(geometry, st.integers(1, 48))
    @settings(max_examples=15, deadline=None)
    def test_windowed_matches_banded_oracle(self, dims, window):
        batch, seq, dim = dims
        scale = dim ** -0.5
        graph, feeds = record_attention(batch, seq, dim, scale=scale)
        _, out = compile_and_run(
            graph, feeds,
            attention_lowering="windowed", attention_window=window,
        )
        s = (feeds["q"] @ np.swapaxes(feeds["k"], -1, -2)) * scale
        keep = attention_keep_mask(
            seq, seq, {"window": window, "causal": False}
        )
        s = np.where(keep, s, -1.0e9)
        e = np.exp(s - s.max(-1, keepdims=True))
        oracle = (e / e.sum(-1, keepdims=True)) @ feeds["v"]
        np.testing.assert_allclose(out, oracle, rtol=1e-5, atol=1e-6)

    def test_unknown_lowering_rejected(self):
        graph, _ = record_attention(1, 8, 4)
        with pytest.raises(ConfigError, match="unknown attention_lowering"):
            GraphCompiler(
                options=CompilerOptions(attention_lowering="banded")
            ).compile(graph)
        with pytest.raises(ConfigError, match="attention_window"):
            GraphCompiler(options=CompilerOptions(
                attention_lowering="windowed", attention_window=0
            )).compile(graph)


def schedule_bytes(schedule):
    """The schedule's observable identity, field by field."""
    return [
        (op.label, op.engine, tuple(op.deps), tuple(op.reads),
         tuple(op.writes))
        for op in schedule.ops
    ]


class TestNaiveByteIdentity:
    def test_naive_schedule_identical_to_default(self):
        graph, _ = record_attention(2, 16, 8, scale=8 ** -0.5)
        default = GraphCompiler().compile(graph)
        naive = GraphCompiler(
            options=CompilerOptions(attention_lowering="naive")
        ).compile(graph)
        assert schedule_bytes(naive) == schedule_bytes(default)
        assert naive.memory.peak_bytes == default.memory.peak_bytes

    def test_naive_recipe_key_matches_default(self):
        """`naive` IS the default — same key, so PR-8 recipes replay."""
        graph, _ = record_attention(2, 16, 8)
        config = GaudiConfig()
        assert (recipe_key(graph, config, CompilerOptions())
                == recipe_key(graph, config,
                              CompilerOptions(attention_lowering="naive")))


class TestRecipeCacheKeying:
    def test_kernel_choice_rekeys_memory_tier(self):
        """A cached naive recipe must never satisfy a flash compile."""
        graph, _ = record_attention(2, 16, 8, scale=8 ** -0.5)
        cache = RecipeCache()
        naive = GraphCompiler(
            options=CompilerOptions(attention_lowering="naive"),
            cache=cache,
        )
        naive.compile(graph)
        assert naive.last_cache_hit is False
        for mode in ("fused", "windowed", "flash"):
            poisoned = GraphCompiler(
                options=CompilerOptions(attention_lowering=mode),
                cache=cache,
            )
            poisoned.compile(graph)
            assert poisoned.last_cache_hit is False, (
                f"{mode} compile replayed the naive recipe"
            )
        # same choice still hits — the miss above was the key, not luck
        again = GraphCompiler(
            options=CompilerOptions(attention_lowering="flash"),
            cache=cache,
        )
        again.compile(graph)
        assert again.last_cache_hit is True

    def test_kernel_choice_rekeys_disk_tier(self, tmp_path):
        graph, _ = record_attention(2, 16, 8, scale=8 ** -0.5)
        GraphCompiler(
            options=CompilerOptions(attention_lowering="naive"),
            cache=RecipeCache(save_dir=tmp_path),
        ).compile(graph)
        flash_cache = RecipeCache(save_dir=tmp_path)
        flash = GraphCompiler(
            options=CompilerOptions(attention_lowering="flash"),
            cache=flash_cache,
        )
        flash.compile(graph)
        assert flash.last_cache_hit is False
        assert flash_cache.disk_hits == 0
        # the naive blob is still good for a fresh naive compiler
        naive_cache = RecipeCache(save_dir=tmp_path)
        naive = GraphCompiler(
            options=CompilerOptions(attention_lowering="naive"),
            cache=naive_cache,
        )
        naive.compile(graph)
        assert naive.last_cache_hit is True
        assert naive_cache.disk_hits == 1

    def test_window_width_rekeys(self):
        graph, _ = record_attention(2, 16, 8)
        config = GaudiConfig()
        assert (
            recipe_key(graph, config, CompilerOptions(
                attention_lowering="windowed", attention_window=128))
            != recipe_key(graph, config, CompilerOptions(
                attention_lowering="windowed", attention_window=256))
        )


class TestConeMatching:
    def test_full_cone_matched(self):
        graph, _ = record_attention(2, 16, 8, scale=0.25)
        cones = find_attention_cones(graph)
        assert len(cones) == 1
        assert cones[0]["scale"] == 0.25
        assert cones[0]["causal"] is False

    def test_multi_consumer_interior_keeps_naive(self):
        """A second consumer of the probabilities breaks the cone."""
        graph, feeds = record_attention(2, 16, 8, extra_consumer=True)
        assert find_attention_cones(graph) == []
        schedule = GraphCompiler(
            options=CompilerOptions(attention_lowering="flash")
        ).compile(graph)
        assert all(
            node.op != "flash_attention" for node in schedule.graph.nodes
        )

    def test_non_last_axis_softmax_keeps_naive(self):
        graph, _ = record_attention(2, 16, 8, softmax_axis=1)
        # axis 1 of a rank-3 (batch, seq, seq) score tensor is not the
        # key axis, so no cone may match
        assert find_attention_cones(graph) == []

    def test_emitted_flash_attrs(self):
        graph, _ = record_attention(2, 16, 8)
        schedule = GraphCompiler(
            options=CompilerOptions(attention_lowering="flash")
        ).compile(graph)
        flash = [n for n in schedule.graph.nodes
                 if n.op == "flash_attention"]
        assert len(flash) == 1
        assert flash[0].attrs["q_block"] == FLASH_Q_BLOCK
        assert flash[0].attrs["k_block"] == FLASH_K_BLOCK

    def test_emitted_windowed_attrs(self):
        graph, _ = record_attention(2, 16, 8)
        schedule = GraphCompiler(options=CompilerOptions(
            attention_lowering="windowed", attention_window=8
        )).compile(graph)
        banded = [n for n in schedule.graph.nodes
                  if n.op == "windowed_attention"]
        assert len(banded) == 1
        assert banded[0].attrs["mask"] == "sliding_window"
        assert banded[0].attrs["window"] == 8


class TestLintRules:
    def _lowered_graph(self, **option_kwargs):
        graph, _ = record_attention(2, 16, 8, scale=8 ** -0.5)
        return GraphCompiler(
            options=CompilerOptions(**option_kwargs)
        ).compile(graph).graph

    def test_pass_output_lints_clean(self):
        for mode in ATTENTION_LOWERINGS:
            lowered = self._lowered_graph(
                attention_lowering=mode, attention_window=8
            )
            findings = [w for w in lint_graph(lowered)
                        if w.rule in ("fused-softmax-cone", "windowed-mask")]
            assert findings == [], f"{mode}: {findings}"

    def test_broken_fused_cone_flagged(self):
        lowered = self._lowered_graph(attention_lowering="fused")
        norm = next(n for n in lowered.nodes if n.op == "softmax_norm")
        norm.attrs["axis"] = 0  # breaks axis agreement across the trio
        assert any(w.rule == "fused-softmax-cone"
                   for w in lint_graph(lowered))

    def test_undeclared_window_mask_flagged(self):
        lowered = self._lowered_graph(
            attention_lowering="windowed", attention_window=8
        )
        banded = next(n for n in lowered.nodes
                      if n.op == "windowed_attention")
        banded.attrs["mask"] = "none"
        assert any(w.rule == "windowed-mask" for w in lint_graph(lowered))

    def test_window_coverage_on_schedule(self):
        """A window as wide as the key count is dense attention at
        banded prices — schedule lint must say so."""
        graph, _ = record_attention(2, 16, 8)
        wide = GraphCompiler(options=CompilerOptions(
            attention_lowering="windowed", attention_window=16
        )).compile(graph)
        assert any(w.rule == "window-coverage" for w in lint_schedule(wide))
        narrow = GraphCompiler(options=CompilerOptions(
            attention_lowering="windowed", attention_window=8
        )).compile(graph)
        assert not any(w.rule == "window-coverage"
                       for w in lint_schedule(narrow))
