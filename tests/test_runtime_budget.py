"""Runtime-budget guards: the reproduction must stay fast.

The whole point of a calibrated simulator is cheap iteration; if the
full study stops completing in seconds, something regressed (an
accidental per-element loop, an index space iterated member by member
at paper scale). Generous bounds — these exist to catch order-of-
magnitude regressions, not to be flaky.
"""

import time

from repro.core import run_attention_study, run_full_study


def test_attention_study_under_ten_seconds():
    start = time.monotonic()
    run_attention_study()
    assert time.monotonic() - start < 10.0


def test_full_study_under_ninety_seconds():
    start = time.monotonic()
    report = run_full_study()
    elapsed = time.monotonic() - start
    assert report.all_passed
    assert elapsed < 90.0, f"full study took {elapsed:.1f}s"
