"""Unit + property tests for the DES core and memory tracker."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import EngineTimeline, EventQueue, Interval, MemoryTracker
from repro.hw.memory import plan_peak_bytes
from repro.util.errors import DeviceMemoryError, ExecutionError


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(ExecutionError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ExecutionError):
            EventQueue().push(-1.0, "x")

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_pops_always_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, None)
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(popped)


class TestEngineTimeline:
    def test_reserve_sequencing(self):
        tl = EngineTimeline("MME")
        a = tl.reserve(0.0, 10.0, "op1")
        b = tl.reserve(5.0, 10.0, "op2")  # engine busy until 10
        assert (a.start, a.end) == (0.0, 10.0)
        assert (b.start, b.end) == (10.0, 20.0)

    def test_gap_when_waiting_on_dependency(self):
        tl = EngineTimeline("MME")
        tl.reserve(0.0, 10.0, "op1")
        tl.reserve(25.0, 5.0, "op2")  # dependency ready at 25
        gaps = tl.gaps()
        assert gaps == [Interval(10.0, 25.0, "idle")]

    def test_utilization(self):
        tl = EngineTimeline("TPC")
        tl.reserve(0.0, 10.0)
        tl.reserve(30.0, 10.0)
        assert tl.utilization() == pytest.approx(0.5)
        assert tl.busy_time() == pytest.approx(20.0)

    def test_utilization_empty(self):
        assert EngineTimeline("X").utilization() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ExecutionError):
            EngineTimeline("X").reserve(0.0, -1.0)

    def test_reset(self):
        tl = EngineTimeline("X")
        tl.reserve(0.0, 5.0)
        tl.reset()
        assert tl.free_at == 0.0
        assert tl.intervals == []

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.floats(min_value=0, max_value=1e4),
            ),
            max_size=40,
        )
    )
    def test_invariant_no_overlap(self, reservations):
        """Core hardware invariant: one op at a time per engine."""
        tl = EngineTimeline("E")
        for earliest, duration in reservations:
            tl.reserve(earliest, duration)
        ivs = tl.intervals
        for prev, nxt in zip(ivs, ivs[1:]):
            assert nxt.start >= prev.end

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.floats(min_value=0, max_value=1e4),
            ),
            max_size=40,
        )
    )
    def test_invariant_busy_plus_gaps_covers_horizon(self, reservations):
        tl = EngineTimeline("E")
        for earliest, duration in reservations:
            tl.reserve(earliest, duration)
        horizon = tl.free_at
        total_gap = sum(g.duration for g in tl.gaps(horizon))
        assert total_gap + tl.busy_time(horizon) == pytest.approx(
            horizon, abs=1e-6
        )


class TestMemoryTracker:
    def test_alloc_free_cycle(self):
        mem = MemoryTracker(1000)
        a = mem.alloc(400, "x")
        assert mem.live_bytes == 400
        mem.free(a)
        assert mem.live_bytes == 0
        assert mem.peak_bytes == 400

    def test_oom_raises(self):
        mem = MemoryTracker(1000)
        mem.alloc(800)
        with pytest.raises(DeviceMemoryError) as exc:
            mem.alloc(300, "activations")
        assert exc.value.capacity_bytes == 1000
        assert "activations" in str(exc.value)

    def test_enforce_false_allows_overflow(self):
        mem = MemoryTracker(100, enforce=False)
        mem.alloc(500)
        assert mem.peak_bytes == 500

    def test_double_free_rejected(self):
        mem = MemoryTracker(100)
        a = mem.alloc(10)
        mem.free(a)
        with pytest.raises(ValueError, match="double free"):
            mem.free(a)

    def test_headroom_and_would_fit(self):
        mem = MemoryTracker(100)
        mem.alloc(60)
        assert mem.headroom_bytes() == 40
        assert mem.would_fit(40)
        assert not mem.would_fit(41)

    def test_summary_and_reset(self):
        mem = MemoryTracker(100)
        mem.alloc(10)
        s = mem.summary()
        assert s["live_bytes"] == 10 and s["num_allocations"] == 1
        mem.reset()
        assert mem.summary()["peak_bytes"] == 0

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=30))
    def test_peak_at_least_live(self, sizes):
        mem = MemoryTracker(10**9)
        for s in sizes:
            mem.alloc(s)
        assert mem.peak_bytes == mem.live_bytes == sum(sizes)


class TestPlanPeakBytes:
    def test_simple_sequence(self):
        # step0: +10; step1: +20, free 0; step2: +5, free 1
        peak = plan_peak_bytes([10, 20, 5], [[], [0], [1]])
        assert peak == 30

    def test_all_live(self):
        assert plan_peak_bytes([1, 2, 3], [[], [], []]) == 6

    def test_double_free_rejected(self):
        with pytest.raises(ValueError, match="double free"):
            plan_peak_bytes([10, 5], [[0], [0]])

    def test_future_free_rejected(self):
        with pytest.raises(ValueError):
            plan_peak_bytes([10, 5], [[1], []])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            plan_peak_bytes([10], [])

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=20))
    def test_peak_bounds(self, sizes):
        frees = [[] for _ in sizes]
        if sizes:
            # free everything at the last step except the last buffer
            frees[-1] = list(range(len(sizes) - 1))
        peak = plan_peak_bytes(sizes, frees)
        assert (max(sizes) if sizes else 0) <= peak <= sum(sizes)
