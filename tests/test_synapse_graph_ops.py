"""Unit tests for the synapse graph IR and op registry (Table 1)."""

import numpy as np
import pytest

from repro.hw.costmodel import EngineKind, OpClass
from repro.hw.dtypes import DType
from repro.synapse import Graph, engine_for, matmul_spec, op, op_names, work_item_for
from repro.util.errors import GraphError, ShapeError


class TestGraphConstruction:
    def make_graph(self):
        g = Graph("t")
        x = g.add_value((2, 3), DType.BF16, name="x", kind="input")
        y = g.add_value((2, 3), DType.BF16)
        g.add_node("relu", [x.vid], y)
        return g, x, y

    def test_basic(self):
        g, x, y = self.make_graph()
        assert len(g) == 1
        g.validate()
        assert g.producer(y.vid).op == "relu"
        assert g.producer(x.vid) is None

    def test_value_properties(self):
        g = Graph()
        v = g.add_value((4, 5), DType.BF16)
        assert v.numel == 20
        assert v.nbytes == 40  # bf16 = 2 bytes

    def test_scalar_value(self):
        g = Graph()
        v = g.add_value((), DType.FP32)
        assert v.numel == 1 and v.nbytes == 4

    def test_unknown_input_rejected(self):
        g = Graph()
        out = g.add_value((2,), DType.BF16)
        with pytest.raises(GraphError, match="unknown value"):
            g.add_node("relu", [999], out)

    def test_double_producer_rejected(self):
        g, x, y = self.make_graph()
        with pytest.raises(GraphError, match="producer"):
            g.add_node("relu", [x.vid], y)

    def test_bad_kind_rejected(self):
        with pytest.raises(GraphError, match="kind"):
            Graph().add_value((2,), DType.BF16, kind="banana")

    def test_graph_inputs_and_parameters(self):
        g = Graph()
        w = g.add_value((3, 3), DType.BF16, kind="param")
        x = g.add_value((1, 3), DType.BF16, kind="input")
        out = g.add_value((1, 3), DType.BF16)
        g.add_node("matmul", [x.vid, w.vid], out)
        assert {v.vid for v in g.graph_inputs()} == {w.vid, x.vid}
        assert [v.vid for v in g.parameters()] == [w.vid]

    def test_consumers(self):
        g, x, y = self.make_graph()
        z = g.add_value((2, 3), DType.BF16)
        g.add_node("exp", [y.vid], z)
        cons = g.consumers()
        assert [n.op for n in cons[y.vid]] == ["exp"]

    def test_validate_catches_out_of_order_use(self):
        g = Graph()
        a = g.add_value((2,), DType.BF16)  # activation with no producer
        out = g.add_value((2,), DType.BF16)
        g.add_node("relu", [a.vid], out)
        with pytest.raises(GraphError, match="before it is produced"):
            g.validate()


class TestTable1Mapping:
    """The paper's Table 1: op -> engine mapping via SynapseAI."""

    def test_only_matmul_shaped_work_on_mme(self):
        # Table 1 extended by the attention kernel pack: besides matmul
        # itself, only the matmul-shaped offloads (exp-as-matmul, flash
        # tile GEMMs) reach the MME; everything else is TPC or NIC.
        mme = ("matmul", "exp_basis_mm", "flash_attention")
        for name in mme:
            assert engine_for(name) is EngineKind.MME, name
        collectives = (
            "all_reduce", "all_gather", "broadcast", "reduce_scatter",
            "send", "recv",
        )
        for name in op_names():
            if name in mme:
                continue
            if name in collectives:
                assert engine_for(name) is EngineKind.NIC, name
            else:
                assert engine_for(name) is EngineKind.TPC, name

    @pytest.mark.parametrize(
        "name",
        ["mul", "square", "spow", "add", "sub", "smul", "sadd", "sqrt", "log"],
    )
    def test_table1_rows_are_tpc(self, name):
        # The exact rows of Table 1.
        assert engine_for(name) is EngineKind.TPC

    def test_unknown_op(self):
        with pytest.raises(GraphError, match="unknown op"):
            op("torch.compile")


class TestMatmulSpec:
    def test_plain_2d(self):
        out, dims = matmul_spec((3, 4), (4, 5), {})
        assert out == (3, 5)
        assert (dims.batch, dims.m, dims.n, dims.k) == (1, 3, 5, 4)

    def test_batched_broadcast(self):
        out, dims = matmul_spec((8, 1, 16, 32), (6, 32, 64), {})
        assert out == (8, 6, 16, 64)
        assert dims.batch == 48

    def test_transpose_b(self):
        out, dims = matmul_spec((2, 16, 32), (2, 64, 32), {"transpose_b": True})
        assert out == (2, 16, 64)
        assert dims.k == 32

    def test_transpose_a(self):
        out, _ = matmul_spec((2, 32, 16), (2, 32, 64), {"transpose_a": True})
        assert out == (2, 16, 64)

    def test_contraction_mismatch(self):
        with pytest.raises(ShapeError, match="contraction"):
            matmul_spec((2, 3), (4, 5), {})

    def test_rank1_rejected(self):
        with pytest.raises(ShapeError, match="rank"):
            matmul_spec((3,), (3, 4), {})


class TestShapeInference:
    def test_broadcast_binary(self):
        assert op("add").infer_shape([(4, 1, 3), (5, 1)], {}) == (4, 5, 3)

    def test_broadcast_incompatible(self):
        with pytest.raises(ShapeError):
            op("add").infer_shape([(3,), (4,)], {})

    def test_reduce_axis_keepdims(self):
        assert op("sum").infer_shape([(2, 3, 4)], {"axis": -1, "keepdims": True}) \
            == (2, 3, 1)
        assert op("sum").infer_shape([(2, 3, 4)], {"axis": 1}) == (2, 4)
        assert op("max").infer_shape([(2, 3)], {}) == ()

    def test_transpose(self):
        assert op("transpose").infer_shape([(2, 3, 4)], {"axes": (0, 2, 1)}) \
            == (2, 4, 3)
        assert op("transpose").infer_shape([(2, 3)], {}) == (3, 2)
        with pytest.raises(ShapeError):
            op("transpose").infer_shape([(2, 3)], {"axes": (0, 0)})

    def test_reshape(self):
        assert op("reshape").infer_shape([(2, 6)], {"shape": (3, 4)}) == (3, 4)
        with pytest.raises(ShapeError):
            op("reshape").infer_shape([(2, 6)], {"shape": (5,)})

    def test_glu_halves_last_dim(self):
        assert op("glu").infer_shape([(4, 10)], {}) == (4, 5)
        with pytest.raises(ShapeError):
            op("glu").infer_shape([(4, 9)], {})

    def test_gather_rows(self):
        assert op("gather_rows").infer_shape([(100, 16), (4, 7)], {}) == (4, 7, 16)


class TestCompute:
    """Functional semantics of representative ops."""

    def test_matmul_with_transpose(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(2, 3, 4)).astype(np.float32)
        b = rng.normal(size=(2, 5, 4)).astype(np.float32)
        out = op("matmul").compute([a, b], {"transpose_b": True})
        np.testing.assert_allclose(out, a @ b.swapaxes(-1, -2), rtol=1e-6)

    def test_softmax_compute(self):
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        out = op("softmax").compute([x], {"axis": -1})
        np.testing.assert_allclose(out.sum(-1), 1.0, rtol=1e-6)

    def test_log_softmax_consistent_with_softmax(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 9)).astype(np.float32)
        ls = op("log_softmax").compute([x], {"axis": -1})
        s = op("softmax").compute([x], {"axis": -1})
        np.testing.assert_allclose(np.exp(ls), s, rtol=1e-5)

    def test_elu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        out = op("elu").compute([x], {})
        np.testing.assert_allclose(out, [np.expm1(-1.0), 0.0, 2.0], rtol=1e-6)

    def test_scalar_ops(self):
        x = np.ones(3, dtype=np.float32)
        np.testing.assert_allclose(op("smul").compute([x], {"alpha": 2.5}), 2.5)
        np.testing.assert_allclose(op("sadd").compute([x], {"alpha": -1.0}), 0.0)
        np.testing.assert_allclose(op("spow").compute([x * 2], {"alpha": 3}), 8.0)

    def test_gather_scatter_round_trip(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        idx = np.array([1, 3, 1])
        gathered = op("gather_rows").compute([table, idx], {})
        assert gathered.shape == (3, 3)
        grad = np.ones_like(gathered)
        scattered = op("scatter_add_rows").compute(
            [grad, idx], {"shape": (4, 3)}
        )
        np.testing.assert_allclose(scattered[1], 2.0)  # row 1 hit twice
        np.testing.assert_allclose(scattered[0], 0.0)

    def test_glu_compute(self):
        x = np.array([[2.0, 0.0]], dtype=np.float32)
        out = op("glu").compute([x], {})
        np.testing.assert_allclose(out, [[1.0]])  # 2 * sigmoid(0)


class TestWorkItems:
    def test_matmul_item(self):
        item = work_item_for(
            "matmul", [(2, 8, 4), (2, 4, 16)], (2, 8, 16), DType.BF16, {}
        )
        assert item.op_class is OpClass.MATMUL
        assert item.matmul.flops == 2 * 2 * 8 * 16 * 4
        assert item.bytes_read == (2 * 8 * 4 + 2 * 4 * 16) * 2

    def test_elementwise_item(self):
        item = work_item_for("add", [(8,), (8,)], (8,), DType.BF16, {})
        assert item.op_class is OpClass.ELEMENTWISE
        assert item.flops == 8
        assert item.bytes_total == 3 * 8 * 2

    def test_special_item_carries_fn(self):
        item = work_item_for("exp", [(100,)], (100,), DType.BF16, {})
        assert item.op_class is OpClass.SPECIAL
        assert item.special_fn == "exp"
        assert item.elements == 100

    def test_reduction_counts_input_elements(self):
        item = work_item_for("sum", [(10, 20)], (10,), DType.BF16, {"axis": -1})
        assert item.op_class is OpClass.REDUCTION
        assert item.flops == 200

    def test_reshape_is_free(self):
        item = work_item_for("reshape", [(4, 4)], (16,), DType.BF16,
                             {"shape": (16,)})
        assert item.bytes_total == 0

    def test_transpose_pays_traffic(self):
        item = work_item_for("transpose", [(4, 4)], (4, 4), DType.BF16, {})
        assert item.bytes_total == 2 * 16 * 2
