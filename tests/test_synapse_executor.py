"""Semantics-preservation tests: frontend == lowered == compiled.

The compiler's contract is that lowering and fusion never change what
a graph computes. These tests record real model graphs in concrete
mode, then re-execute them through the functional graph executor (raw
and compiled) and demand bit-compatible (up to fp32 tolerance) results.
"""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.models import AttentionConfig, SoftmaxAttention, TransformerLayer
from repro.models.config import LayerConfig
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    execute_graph,
    execute_outputs,
    execute_schedule,
    lower_graph,
)
from repro.util.errors import ExecutionError


def record_and_inputs(fn, shapes, seed=0):
    """Record fn(inputs) concretely; return (graph, name->array)."""
    rng = np.random.default_rng(seed)
    arrays = {
        name: rng.normal(size=shape).astype(np.float32)
        for name, shape in shapes.items()
    }
    with ht.record("t", mode="concrete") as rec:
        tensors = {
            name: ht.tensor(arr, name=name) for name, arr in arrays.items()
        }
        out = fn(tensors)
    return rec.graph, arrays, out.numpy()


class TestExecuteGraph:
    def test_matches_eager_frontend(self):
        graph, arrays, eager = record_and_inputs(
            lambda t: F.softmax(F.matmul(t["a"], t["b"])),
            {"a": (4, 8), "b": (8, 5)},
        )
        env = execute_graph(graph, arrays)
        final = graph.nodes[-1].output
        np.testing.assert_allclose(env[final], eager, rtol=1e-5)

    def test_binding_by_vid(self):
        graph, arrays, eager = record_and_inputs(
            lambda t: F.exp(t["x"]), {"x": (3,)}
        )
        vid = graph.graph_inputs()[0].vid
        env = execute_graph(graph, {vid: arrays["x"]})
        np.testing.assert_allclose(env[graph.nodes[-1].output], eager,
                                   rtol=1e-6)

    def test_missing_input_rejected(self):
        graph, arrays, _ = record_and_inputs(
            lambda t: F.exp(t["x"]), {"x": (3,)}
        )
        with pytest.raises(ExecutionError, match="unbound"):
            execute_graph(graph, {})

    def test_unknown_name_rejected(self):
        graph, arrays, _ = record_and_inputs(
            lambda t: F.exp(t["x"]), {"x": (3,)}
        )
        with pytest.raises(ExecutionError, match="no graph input named"):
            execute_graph(graph, {"y": arrays["x"]})

    def test_shape_mismatch_rejected(self):
        graph, arrays, _ = record_and_inputs(
            lambda t: F.exp(t["x"]), {"x": (3,)}
        )
        with pytest.raises(ExecutionError, match="shape"):
            execute_graph(graph, {"x": np.zeros((4,), np.float32)})

    def test_execute_outputs_returns_only_terminals(self):
        graph, arrays, eager = record_and_inputs(
            lambda t: F.mean(F.square(t["x"])), {"x": (5,)}
        )
        outs = execute_outputs(graph, arrays)
        assert len(outs) == 1
        np.testing.assert_allclose(list(outs.values())[0], eager, rtol=1e-6)


class TestLoweringPreservesSemantics:
    @pytest.mark.parametrize("axis", [-1, 0])
    def test_softmax_lowering(self, axis):
        graph, arrays, eager = record_and_inputs(
            lambda t: F.softmax(t["x"], axis=axis), {"x": (6, 7)}
        )
        lowered = lower_graph(graph)
        outs = execute_outputs(lowered, arrays)
        np.testing.assert_allclose(list(outs.values())[0], eager, rtol=1e-5)

    def test_log_softmax_lowering(self):
        graph, arrays, eager = record_and_inputs(
            lambda t: F.log_softmax(t["x"]), {"x": (4, 9)}
        )
        lowered = lower_graph(graph)
        outs = execute_outputs(lowered, arrays)
        np.testing.assert_allclose(list(outs.values())[0], eager, rtol=1e-5)

    def test_attention_layer_lowering(self):
        rng = np.random.default_rng(3)
        attn = SoftmaxAttention(AttentionConfig(num_heads=2, head_dim=4),
                                rng=rng)
        with ht.record(mode="concrete") as rec:
            x = ht.tensor(rng.normal(size=(2, 5, 8)), name="x")
            eager = attn(x).numpy()
        lowered = lower_graph(rec.graph)
        inputs = {"x": x.numpy()}
        # parameters are graph inputs too: bind them by vid
        for v in lowered.graph_inputs():
            if v.kind == "param":
                orig = next(
                    p for p in attn.parameters() if p.name == v.name
                )
                inputs[v.vid] = orig.data
            elif v.kind == "const":
                pass
        env = execute_outputs(lowered, inputs)
        np.testing.assert_allclose(
            list(env.values())[0], eager, rtol=1e-4, atol=1e-5
        )


class TestSchedulePreservesSemantics:
    def _compile_and_check(self, fn, shapes, **opts):
        graph, arrays, eager = record_and_inputs(fn, shapes)
        schedule = GraphCompiler(
            options=CompilerOptions(**opts)
        ).compile(graph)
        replay = execute_schedule(schedule, arrays)
        final = schedule.graph.nodes[-1].output
        np.testing.assert_allclose(replay[final], eager, rtol=1e-5,
                                   atol=1e-6)

    def test_fused_elementwise_chain(self):
        self._compile_and_check(
            lambda t: F.add_scalar(F.mul_scalar(F.exp(t["x"]), 2.0), 1.0),
            {"x": (64,)},
        )

    def test_fused_softmax_pipeline(self):
        self._compile_and_check(
            lambda t: F.matmul(F.softmax(F.matmul(t["a"], t["b"])), t["c"]),
            {"a": (4, 8), "b": (8, 6), "c": (6, 3)},
        )

    def test_unfused_matches_too(self):
        self._compile_and_check(
            lambda t: F.softmax(F.mul_scalar(t["x"], 0.5)),
            {"x": (5, 5)}, fuse_elementwise=False,
        )

    def test_glu_with_recompilation(self):
        self._compile_and_check(
            lambda t: F.glu(t["x"]), {"x": (6, 10)},
        )

    def test_full_transformer_layer_through_compiler(self):
        rng = np.random.default_rng(9)
        layer = TransformerLayer(
            LayerConfig(attention=AttentionConfig(num_heads=2, head_dim=4),
                        ffn_mult=2),
            rng=rng,
        )
        with ht.record(mode="concrete") as rec:
            x = ht.tensor(rng.normal(size=(2, 6, 8)), name="x")
            eager = layer(x).numpy()
        schedule = GraphCompiler().compile(rec.graph)
        inputs = {"x": x.numpy()}
        params = {p.name: p for p in layer.parameters()}
        for v in schedule.graph.graph_inputs():
            if v.kind == "param":
                inputs[v.vid] = params[v.name].data
        replay = execute_schedule(schedule, inputs)
        final = schedule.graph.nodes[-1].output
        np.testing.assert_allclose(replay[final], eager, rtol=1e-4,
                                   atol=1e-5)
