"""The memory-planning subsystem: checkpoints, liveness, spill/recompute.

Covers the planning layer end to end:

* the ``ht.checkpoint`` frontend marker and its survival through
  lowering, TPC slicing, and serialization;
* the shared liveness module — planner and memtrace must compute the
  same footprint on paper-scale graphs;
* recipe-cache keying of every memory-relevant compile option (the
  cache-poisoning regression: a planned schedule must never be served
  for a different budget or policy);
* the planner itself — policy validation, spill pairing, recompute
  tiling, and the ISSUE acceptance case: the paper's GPT-2 step at
  batch 32 fits the 32 GiB budget under ``memory_policy="auto"``;
* hypothesis properties: any planned schedule keeps its peak at or
  under budget (or is rejected), reproduces the unplanned numerics
  byte for byte, and passes the schedule lint rules.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.core.e2e_llm import record_training_step
from repro.hw.config import GaudiConfig
from repro.hw.costmodel import EngineKind
from repro.models import TransformerLayer, paper_layer_config
from repro.models.config import AttentionConfig, LayerConfig
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    RecipeCache,
    Runtime,
    compute_liveness,
    execute_schedule,
    graph_from_json,
    graph_to_json,
    lint_schedule,
    memory_timeline,
    recipe_key,
)
from repro.util.errors import CompileError, DeviceMemoryError
from repro.util.units import GIB


def small_layer_config(include_ffn=False):
    return LayerConfig(
        attention=AttentionConfig(num_heads=2, head_dim=32, kind="softmax"),
        include_ffn=include_ffn,
    )


def record_checkpointed_layer(include_ffn=False, seed=7):
    """A concrete checkpointed layer fwd+bwd; returns (rec, inputs)."""
    cfg = small_layer_config(include_ffn)
    layer = TransformerLayer(cfg, materialize=True)
    rng = np.random.default_rng(seed)
    x_np = rng.normal(size=(2, 16, cfg.d_model)).astype(np.float32)
    with ht.record("ckpt-layer", mode="concrete") as rec:
        x = ht.tensor(x_np, name="x")
        y = ht.checkpoint(layer, x, label="layer")
        y.sum().backward()
    inputs = {"x": x_np}
    for p in layer.parameters():
        inputs[p.name] = p.data
    return rec, inputs


def activation_budget(schedule, fraction):
    """A budget keeping ``fraction`` of the activation headroom."""
    pers = schedule.memory.persistent_bytes
    peak = schedule.memory.peak_bytes
    return pers + int((peak - pers) * fraction)


ORACLE = CompilerOptions(use_recipe_cache=False, enforce_memory=False)


class TestCheckpointMarker:
    def test_checkpoint_records_segment(self):
        rec, _ = record_checkpointed_layer()
        segments = rec.graph.checkpoints()
        assert len(segments) == 1
        label, inputs, outputs, droppable = segments[0]
        assert label == "layer"
        assert inputs and outputs and droppable

    def test_droppable_excludes_boundaries(self):
        rec, _ = record_checkpointed_layer()
        _, inputs, outputs, _ = rec.graph.checkpoints()[0]
        droppable = rec.graph.checkpoint_droppable()
        assert droppable
        assert droppable.isdisjoint(inputs)
        assert droppable.isdisjoint(outputs)

    def test_no_recorder_is_a_plain_call(self):
        assert ht.checkpoint(lambda a, b: a + b, 2, 3) == 5

    def test_checkpoint_does_not_change_eager_values(self):
        cfg = small_layer_config()
        layer = TransformerLayer(cfg, materialize=True)
        x_np = np.ones((1, 4, cfg.d_model), dtype=np.float32)
        with ht.record("plain", mode="concrete"):
            plain = layer(ht.tensor(x_np, name="x")).numpy()
        with ht.record("marked", mode="concrete"):
            marked = ht.checkpoint(
                layer, ht.tensor(x_np, name="x")
            ).numpy()
        np.testing.assert_array_equal(plain, marked)

    def test_tags_survive_serialization(self):
        rec, _ = record_checkpointed_layer()
        restored = graph_from_json(graph_to_json(rec.graph))
        assert restored.checkpoints() == rec.graph.checkpoints()
        assert (restored.checkpoint_droppable()
                == rec.graph.checkpoint_droppable())

    def test_tags_survive_lowering_into_valid_vids(self):
        """After the full pipeline the droppable set must name real
        values of the *lowered* graph, and still be non-trivial."""
        rec, _ = record_checkpointed_layer()
        schedule = GraphCompiler(options=ORACLE).compile(rec.graph)
        lowered = schedule.graph
        droppable = lowered.checkpoint_droppable()
        assert droppable
        for vid in droppable:
            lowered.value(vid)  # raises if the vid does not exist

    def test_stack_checkpoint_flag_marks_every_layer(self):
        rec = record_training_step("gpt", batch=2, seq_len=64,
                                   checkpoint=True)
        labels = [seg[0] for seg in rec.graph.checkpoints()]
        assert len(labels) == 2  # E2E_SHAPES: two decoder layers
        assert labels[0] != labels[1]

    def test_unmarked_graph_has_nothing_droppable(self):
        rec = record_training_step("gpt", batch=2, seq_len=64)
        assert rec.graph.checkpoints() == []
        assert rec.graph.checkpoint_droppable() == set()


class TestSharedLiveness:
    """Planner and memtrace must agree on the footprint (the extracted
    liveness module is the single source of truth for both)."""

    def _assert_agree(self, schedule):
        live = compute_liveness(schedule.graph, schedule.ops)
        timeline = memory_timeline(schedule)
        assert live.peak_bytes == schedule.memory.peak_bytes
        assert timeline.peak_bytes == schedule.memory.peak_bytes
        assert live.persistent_bytes == schedule.memory.persistent_bytes

    def test_cross_check_paper_layer(self):
        layer_cfg = paper_layer_config("softmax")
        layer = TransformerLayer(layer_cfg, materialize=False)
        with ht.record("fig4-layer", mode="symbolic") as rec:
            layer(ht.input_tensor((8, 256, layer_cfg.d_model)))
        self._assert_agree(GraphCompiler(options=ORACLE).compile(rec.graph))

    def test_cross_check_gpt_training_step(self):
        graph = record_training_step("gpt", batch=2, seq_len=128).graph
        self._assert_agree(GraphCompiler(options=ORACLE).compile(graph))

    def test_cross_check_planned_schedule(self):
        """Liveness parity must also hold after the planner rewrites
        the op list (multi-write intervals, spill DMA ops)."""
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        planned = GraphCompiler(options=dataclasses.replace(
            ORACLE, memory_policy="auto",
            hbm_budget=activation_budget(oracle, 0.9),
        )).compile(rec.graph)
        assert planned.memory.peak_bytes < oracle.memory.peak_bytes
        self._assert_agree(planned)


class TestRecipeCacheKeying:
    """The cache-poisoning regression: every memory-relevant option and
    tag must key the recipe."""

    def test_budget_changes_key(self):
        graph = record_checkpointed_layer()[0].graph
        config = GaudiConfig()
        assert (recipe_key(graph, config, CompilerOptions())
                != recipe_key(graph, config,
                              CompilerOptions(hbm_budget=1 << 30)))

    def test_policy_changes_key(self):
        graph = record_checkpointed_layer()[0].graph
        config = GaudiConfig()
        assert (recipe_key(graph, config, CompilerOptions())
                != recipe_key(graph, config,
                              CompilerOptions(memory_policy="auto")))

    def test_checkpoint_tags_change_key(self):
        """The same computation with and without checkpoint markers
        must compile to different cache entries — the tags license
        graph rewrites."""
        plain = record_training_step("gpt", batch=2, seq_len=64).graph
        tagged = record_training_step("gpt", batch=2, seq_len=64,
                                      checkpoint=True).graph
        config = GaudiConfig()
        opts = CompilerOptions()
        assert (recipe_key(plain, config, opts)
                != recipe_key(tagged, config, opts))

    def test_memory_cache_never_serves_stale_plan(self):
        """Regression: compiling under a tight budget then recompiling
        unconstrained must not replay the planned (spilled) recipe."""
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        cache = RecipeCache()
        tight = dataclasses.replace(
            ORACLE, use_recipe_cache=True, memory_policy="auto",
            hbm_budget=activation_budget(oracle, 0.9),
        )
        loose = dataclasses.replace(ORACLE, use_recipe_cache=True)
        first = GraphCompiler(options=tight, cache=cache).compile(rec.graph)
        assert any(op.src in ("spill", "recompute") for op in first.ops)
        second = GraphCompiler(options=loose, cache=cache).compile(rec.graph)
        assert not any(
            op.src in ("spill", "recompute") for op in second.ops
        )
        assert second.memory.peak_bytes == oracle.memory.peak_bytes
        assert cache.hits == 0 and cache.misses == 2

    def test_disk_cache_never_serves_stale_plan(self, tmp_path):
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        tight = dataclasses.replace(
            ORACLE, use_recipe_cache=True, memory_policy="auto",
            hbm_budget=activation_budget(oracle, 0.9),
        )
        loose = dataclasses.replace(ORACLE, use_recipe_cache=True)
        GraphCompiler(
            options=tight, cache=RecipeCache(save_dir=tmp_path)
        ).compile(rec.graph)
        fresh = RecipeCache(save_dir=tmp_path)
        second = GraphCompiler(options=loose, cache=fresh).compile(rec.graph)
        assert fresh.disk_hits == 0
        assert second.memory.peak_bytes == oracle.memory.peak_bytes

    def test_planned_recipe_replays_from_cache(self):
        """Same budget + policy *should* hit, and the replayed recipe
        keeps the planner's rewrites."""
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        tight = dataclasses.replace(
            ORACLE, use_recipe_cache=True, memory_policy="auto",
            hbm_budget=activation_budget(oracle, 0.9),
        )
        compiler = GraphCompiler(options=tight)
        first = compiler.compile(rec.graph)
        second = compiler.compile(rec.graph)
        assert compiler.last_cache_hit is True
        assert ([op.label for op in second.ops]
                == [op.label for op in first.ops])
        assert second.memory.peak_bytes == first.memory.peak_bytes


class TestPlannerPolicies:
    def test_unknown_policy_rejected(self):
        rec, _ = record_checkpointed_layer()
        with pytest.raises(CompileError, match="memory_policy"):
            GraphCompiler(options=dataclasses.replace(
                ORACLE, memory_policy="page-to-ssd",
            )).compile(rec.graph)

    def test_policy_none_still_rejects_over_budget(self):
        """The pre-planning behaviour is preserved: policy 'none' +
        enforcement raises instead of planning."""
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        with pytest.raises(DeviceMemoryError, match="memory_policy"):
            GraphCompiler(options=dataclasses.replace(
                ORACLE, enforce_memory=True,
                hbm_budget=activation_budget(oracle, 0.9),
            )).compile(rec.graph)

    def test_spill_ops_are_paired_unpipelined_dma(self):
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        planned = GraphCompiler(options=dataclasses.replace(
            ORACLE, memory_policy="spill",
            hbm_budget=activation_budget(oracle, 0.9),
        )).compile(rec.graph)
        spills = [op for op in planned.ops if op.src == "spill"]
        assert spills
        outs = [op for op in spills if op.reads and not op.writes]
        ins = [op for op in spills if op.writes]
        assert len(outs) == len(ins) == planned.stats["memory"]["spill_ops"]
        for op in spills:
            assert op.engine is EngineKind.DMA
            assert all(not item.pipelined for item in op.items)
            assert not op.node_ids  # value-transparent: nothing replays

    def test_recompute_ops_replay_original_nodes(self):
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        planned = GraphCompiler(options=dataclasses.replace(
            ORACLE, memory_policy="recompute",
            hbm_budget=activation_budget(oracle, 0.9),
        )).compile(rec.graph)
        clones = [op for op in planned.ops if op.src == "recompute"]
        assert clones
        for clone in clones:
            assert clone.node_ids
            twins = [
                op for op in planned.ops
                if op is not clone and op.writes == clone.writes
            ]
            assert twins and all(
                t.node_ids == clone.node_ids for t in twins
            )

    def test_planner_reports_memory_stats(self):
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        budget = activation_budget(oracle, 0.9)
        planned = GraphCompiler(options=dataclasses.replace(
            ORACLE, memory_policy="auto", hbm_budget=budget,
        )).compile(rec.graph)
        stats = planned.stats["memory"]
        assert stats["policy"] == "auto"
        assert stats["budget_bytes"] == budget
        assert stats["oracle_peak_bytes"] == oracle.memory.peak_bytes
        assert stats["peak_bytes"] == planned.memory.peak_bytes
        assert stats["peak_bytes"] < stats["oracle_peak_bytes"]

    def test_planned_schedule_executes_on_the_runtime(self):
        """Spill DMA is a first-class runtime op: the planned schedule
        runs under contention and the DMA engine carries the spills."""
        rec, _ = record_checkpointed_layer()
        oracle = GraphCompiler(options=ORACLE).compile(rec.graph)
        planned = GraphCompiler(options=dataclasses.replace(
            ORACLE, memory_policy="spill",
            hbm_budget=activation_budget(oracle, 0.9),
        )).compile(rec.graph)
        result = Runtime().execute(planned, reorder=True,
                                   scheduler="lookahead")
        spill_events = [
            e for e in result.timeline.events if e.src == "spill"
        ]
        assert spill_events
        assert all(e.engine is EngineKind.DMA for e in spill_events)
        assert all(e.dur_us > 0 for e in spill_events)


class TestAcceptanceGptBatch32:
    """The ISSUE criterion: the paper's GPT-2 config compiles and runs
    at batch 32 under the 32 GiB budget with ``memory_policy='auto'``."""

    def test_gpt_batch32_plans_under_capacity(self):
        graph = record_training_step("gpt", batch=32, checkpoint=True).graph
        with pytest.raises(DeviceMemoryError):
            GraphCompiler(options=CompilerOptions(
                use_recipe_cache=False,
            )).compile(graph)
        planned = GraphCompiler(options=CompilerOptions(
            use_recipe_cache=False, memory_policy="auto",
        )).compile(graph)
        assert planned.memory.peak_bytes <= 32 * GIB
        stats = planned.stats["memory"]
        assert stats["spill_ops"] > 0 and stats["recompute_ops"] > 0
        assert lint_schedule(planned) == []
        result = Runtime().execute(planned, reorder=True,
                                   scheduler="lookahead")
        assert result.total_time_us > 0


BUDGET_FRACTIONS = st.floats(min_value=0.3, max_value=0.98)


class TestPlannedScheduleProperties:
    """Hypothesis: for any budget fraction and policy, the planner
    either fits the budget or rejects; numerics never change; the
    schedule lint rules never fire."""

    @classmethod
    def setup_class(cls):
        cls.rec, cls.inputs = record_checkpointed_layer(include_ffn=True)
        cls.oracle = GraphCompiler(options=ORACLE).compile(cls.rec.graph)
        cls.env_oracle = execute_schedule(cls.oracle, cls.inputs)

    def _plan(self, policy, fraction):
        return GraphCompiler(options=dataclasses.replace(
            ORACLE, memory_policy=policy,
            hbm_budget=activation_budget(self.oracle, fraction),
        )).compile(self.rec.graph)

    @given(policy=st.sampled_from(("recompute", "spill", "auto")),
           fraction=BUDGET_FRACTIONS)
    @settings(max_examples=12, deadline=None)
    def test_peak_within_budget_or_rejected(self, policy, fraction):
        budget = activation_budget(self.oracle, fraction)
        try:
            planned = GraphCompiler(options=dataclasses.replace(
                ORACLE, enforce_memory=True, memory_policy=policy,
                hbm_budget=budget,
            )).compile(self.rec.graph)
        except DeviceMemoryError:
            return  # an honest rejection is a valid outcome
        assert planned.memory.peak_bytes <= budget

    @given(policy=st.sampled_from(("recompute", "spill", "auto")),
           fraction=BUDGET_FRACTIONS)
    @settings(max_examples=8, deadline=None)
    def test_numerics_byte_identical(self, policy, fraction):
        planned = self._plan(policy, fraction)
        env = execute_schedule(planned, self.inputs)
        for vid, ref in self.env_oracle.items():
            if vid in env:
                assert np.array_equal(env[vid], ref)

    @given(policy=st.sampled_from(("recompute", "spill", "auto")),
           fraction=BUDGET_FRACTIONS)
    @settings(max_examples=8, deadline=None)
    def test_schedule_lint_clean(self, policy, fraction):
        planned = self._plan(policy, fraction)
        assert lint_schedule(planned) == []

    @given(fraction=BUDGET_FRACTIONS)
    @settings(max_examples=8, deadline=None)
    def test_memtrace_matches_planner(self, fraction):
        planned = self._plan("auto", fraction)
        assert (memory_timeline(planned).peak_bytes
                == planned.memory.peak_bytes)
