"""Collective ops: fabric plans, gradient marking, injection, lint."""

import dataclasses
import json

import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.config import HLS1Config, InterconnectConfig
from repro.hw.costmodel import EngineKind
from repro.hw.dtypes import DType
from repro.hw.interconnect import (
    RingAllReduce,
    collective_plan,
    fabric_bandwidth,
)
from repro.synapse import (
    GraphCompiler,
    default_compiler_options,
    graph_from_json,
    graph_signature,
    graph_to_json,
    lint_graph,
)
from repro.synapse.graph import Graph
from repro.util.errors import ConfigError, GraphError
from repro.util.units import s_to_us


def record_tiny_step(d: int = 8, layers: int = 2, batch: int = 4):
    """A tiny symbolic MLP training step with marked gradients."""
    lins = [ht.Linear(d, d, materialize=False) for _ in range(layers)]
    with ht.record("tiny-train", mode="symbolic") as rec:
        h = ht.input_tensor((batch, d), name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


class TestHLS1ConfigValidation:
    def test_zero_cards_rejected(self):
        with pytest.raises(ConfigError):
            HLS1Config(num_cards=0)

    @pytest.mark.parametrize("bad", [3, 5, 6, 7])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ConfigError, match="power of two"):
            HLS1Config(num_cards=bad)

    @pytest.mark.parametrize("good", [1, 2, 4, 8])
    def test_powers_of_two_accepted(self, good):
        assert HLS1Config(num_cards=good).num_cards == good


class TestCollectivePlans:
    def setup_method(self):
        self.cfg = InterconnectConfig()

    def test_single_card_plan_is_empty(self):
        plan = collective_plan("all_reduce", 1, 1 << 20, self.cfg)
        assert plan.steps == ()
        assert plan.analytic_time_us == 0.0

    def test_all_reduce_plan_matches_analytic(self):
        payload = 4 << 20
        p = 4
        plan = collective_plan("all_reduce", p, payload, self.cfg)
        assert len(plan.steps) == 2 * (p - 1)
        assert all(s.wire_bytes == payload for s in plan.steps)
        assert plan.rate_cap == p * self.cfg.roce_bandwidth_bytes_per_s
        # replaying the steps alone (latency, then wire at the rate
        # cap) IS the plan's analytic time — exact equality, no
        # tolerance: analytic_time_us is defined as this step sum
        replay = sum(
            s.latency_us + s_to_us(s.wire_bytes / plan.rate_cap)
            for s in plan.steps
        )
        assert replay == plan.analytic_time_us
        assert plan.replay_time_us() == plan.analytic_time_us
        # the textbook closed form stays as a cross-check reference;
        # it differs from the step sum only by FP rounding order
        analytic = RingAllReduce(self.cfg).cost(p, payload).time_us
        assert replay == pytest.approx(analytic, rel=1e-12)

    @pytest.mark.parametrize(
        "op,p,payload",
        [
            ("all_reduce", 8, 4 << 20), ("all_reduce", 2, 17),
            ("all_gather", 4, 1 << 20), ("reduce_scatter", 8, 3 << 19),
            ("broadcast", 4, 1 << 10), ("all_reduce", 8, 3),
        ],
    )
    def test_replay_equals_analytic_exactly(self, op, p, payload):
        # satellite regression: every flat plan's analytic time equals
        # its replayed step sum bit-for-bit, sub-chunk floors included
        plan = collective_plan(op, p, payload, self.cfg)
        assert plan.replay_time_us() == plan.analytic_time_us

    def test_sub_chunk_payload_is_latency_only(self):
        # fewer payload bytes than cards: the ring cannot split the
        # buffer into p chunks, so the cost floors at the latency term
        cost = RingAllReduce(self.cfg).cost(8, 2)
        assert cost.time_us == pytest.approx(
            2 * 7 * self.cfg.roce_latency_us
        )
        plan = collective_plan("all_reduce", 8, 2, self.cfg)
        assert all(s.wire_bytes == 0.0 for s in plan.steps)
        # the latency-only floor is exact, not approximate
        assert plan.analytic_time_us == 2 * 7 * self.cfg.roce_latency_us

    def test_all_gather_plan(self):
        payload = 1 << 20
        plan = collective_plan("all_gather", 4, payload, self.cfg)
        assert len(plan.steps) == 3
        assert all(s.wire_bytes == 4 * payload for s in plan.steps)

    def test_reduce_scatter_plan_is_half_the_all_reduce(self):
        payload = 4 << 20
        rs = collective_plan("reduce_scatter", 4, payload, self.cfg)
        ar = collective_plan("all_reduce", 4, payload, self.cfg)
        assert len(rs.steps) * 2 == len(ar.steps)
        assert rs.steps == ar.steps[: len(rs.steps)]
        assert rs.rate_cap == ar.rate_cap

    def test_broadcast_plan(self):
        payload = 1 << 20
        plan = collective_plan("broadcast", 2, payload, self.cfg)
        assert len(plan.steps) == 1
        assert plan.steps[0].wire_bytes == payload
        assert plan.rate_cap == self.cfg.roce_bandwidth_bytes_per_s

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError, match="unknown collective"):
            collective_plan("all_to_all", 4, 1024, self.cfg)

    def test_fabric_bandwidth_scales_with_cards(self):
        assert fabric_bandwidth(self.cfg, 4) == pytest.approx(
            4 * self.cfg.roce_bandwidth_bytes_per_s
        )
        with pytest.raises(ConfigError):
            fabric_bandwidth(self.cfg, 0)


class TestGradientMarking:
    def test_unknown_vid_rejected(self):
        g = Graph("g")
        with pytest.raises(GraphError, match="unknown value"):
            g.mark_gradient(999)

    def test_remarking_is_noop(self):
        g = Graph("g")
        v = g.add_value((4,), DType.FP32)
        g.mark_gradient(v.vid, "w")
        g.mark_gradient(v.vid, "w")
        assert len(g.gradients()) == 1

    def test_optimizer_marks_parameter_gradients(self):
        graph = record_tiny_step()
        names = {name for _, name in graph.gradients()}
        assert len(graph.gradients()) == 4  # 2 layers x (weight, bias)
        assert any("weight" in n for n in names)

    def test_serialize_roundtrip_preserves_marks(self):
        graph = record_tiny_step()
        restored = graph_from_json(graph_to_json(graph))
        assert len(restored.gradients()) == len(graph.gradients())
        assert (
            sorted(n for _, n in restored.gradients())
            == sorted(n for _, n in graph.gradients())
        )

    def test_marks_change_graph_signature(self):
        graph = record_tiny_step()
        payload = json.loads(graph_to_json(graph))
        assert payload.get("gradients")
        payload.pop("gradients")
        stripped = graph_from_json(json.dumps(payload))
        assert graph_signature(stripped) != graph_signature(graph)


def _compile(graph, **overrides):
    options = dataclasses.replace(
        default_compiler_options(), inject_collectives=True, **overrides
    )
    return GraphCompiler(options=options).compile(graph)


class TestCollectiveInjection:
    def test_off_by_default(self):
        graph = record_tiny_step()
        schedule = GraphCompiler().compile(graph)
        assert not [
            op for op in schedule.ops if op.engine is EngineKind.NIC
        ]

    def test_injects_nic_all_reduces(self):
        graph = record_tiny_step()
        schedule = _compile(graph)
        colls = [op for op in schedule.ops if op.engine is EngineKind.NIC]
        assert colls
        for op in colls:
            assert op.src == "all_reduce"
            assert op.reads
            assert all(d < op.index for d in op.deps)

    def test_optimizer_waits_for_reduced_gradients(self):
        graph = record_tiny_step()
        schedule = _compile(graph)
        colls = [op for op in schedule.ops if op.engine is EngineKind.NIC]
        for coll in colls:
            reduced = set(coll.reads)
            consumers = [
                op for op in schedule.ops
                if op.index > coll.index and reduced & set(op.reads)
            ]
            assert consumers, "every bucket has an optimizer reader"
            for op in consumers:
                assert coll.index in op.deps

    def test_no_overlap_is_one_bucket(self):
        graph = record_tiny_step()
        schedule = _compile(graph, comm_overlap=False)
        colls = [op for op in schedule.ops if op.engine is EngineKind.NIC]
        assert len(colls) == 1

    def test_smaller_buckets_mean_more_collectives(self):
        graph = record_tiny_step(d=32)
        coarse = _compile(graph, bucket_mb=100.0)
        fine = _compile(graph, bucket_mb=0.001)
        count = lambda s: sum(
            1 for op in s.ops if op.engine is EngineKind.NIC
        )
        assert count(fine) > count(coarse)

    def test_gradient_bytes_stat(self):
        graph = record_tiny_step()
        schedule = _compile(graph)
        assert schedule.stats["gradient_bytes"] > 0

    def test_bucket_size_keys_recipe_cache(self):
        graph = record_tiny_step()
        options = dataclasses.replace(
            default_compiler_options(), inject_collectives=True
        )
        compiler = GraphCompiler(options=options)
        compiler.compile(graph)
        assert not compiler.last_cache_hit
        compiler.compile(graph)
        assert compiler.last_cache_hit


class TestCollectiveLint:
    def _gather_graph(self, out_shape):
        g = Graph("coll")
        x = g.add_value((4,), DType.FP32, name="x", kind="input")
        out = g.add_value(out_shape, DType.FP32)
        g.add_node(
            "all_gather", [x.vid], out, attrs={"num_cards": 2}
        )
        return g

    def test_consistent_all_gather_is_clean(self):
        warnings = lint_graph(self._gather_graph((2, 4)))
        assert not [w for w in warnings if w.rule.startswith("collective")]

    def test_payload_mismatch_flagged(self):
        warnings = lint_graph(self._gather_graph((3, 4)))
        assert any(w.rule == "collective-payload" for w in warnings)
