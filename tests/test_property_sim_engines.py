"""Property-based tests: the vector fluid engine is bit-for-bit the scalar one.

The vectorized event loop (``engine="vector"``) is a pure performance
refactor: it must walk the identical global epoch sequence and perform
the identical per-element IEEE-754 arithmetic as the scalar reference
loop, differing only in wall-clock cost. These properties pin that
contract over random training steps, card populations, bucket sizes,
and both contention modes:

* ``ExecutionResult``s from both engines carry *equal* ``TraceEvent``
  lists (dataclass ``==`` — every field, every event, in order) and
  equal aggregate floats (no tolerance);
* the same holds end-to-end through the profiler layer, where
  ``CompilerOptions.sim_engine`` selects the engine: ``ProfileResult``
  timelines and derived aggregates match exactly.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.hw.config import GaudiConfig, HLS1Config
from repro.hw.costmodel import EngineKind
from repro.hw.device import GaudiDevice, HLS1Device
from repro.synapse import (
    GraphCompiler,
    HLS1Runtime,
    Runtime,
    default_compiler_options,
)
from repro.synapse.profiler import HLS1Profiler, SynapseProfiler


def record_step(width, depth, batch):
    lins = [ht.Linear(width, width, materialize=False) for _ in range(depth)]
    with ht.record("engine-prop", mode="symbolic") as rec:
        h = ht.input_tensor((batch, width), name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


def compile_step(graph, bucket_mb, *, collectives=True):
    options = dataclasses.replace(
        default_compiler_options(),
        inject_collectives=collectives,
        bucket_mb=bucket_mb,
    )
    return GraphCompiler(options=options).compile(graph)


def assert_results_identical(r_scalar, r_vector):
    assert r_scalar.timeline.events == r_vector.timeline.events
    assert r_scalar.total_time_us == r_vector.total_time_us
    assert r_scalar.start_offset_us == r_vector.start_offset_us
    assert r_scalar.contention_stall_us == r_vector.contention_stall_us
    assert r_scalar.exposed_comm_us == r_vector.exposed_comm_us
    assert r_scalar.fabric_busy_us == r_vector.fabric_busy_us
    assert r_scalar.issue_order == r_vector.issue_order
    assert r_scalar.num_cards == r_vector.num_cards


width_st = st.integers(4, 24)
depth_st = st.integers(1, 3)
batch_st = st.integers(2, 6)
cards_st = st.sampled_from([1, 2, 4, 8])
bucket_st = st.sampled_from([0.001, 0.01, 25.0])
contention_st = st.booleans()


class TestEngineEquivalenceProperties:
    @given(width_st, depth_st, batch_st, cards_st, bucket_st, contention_st)
    @settings(max_examples=20, deadline=None)
    def test_hls1_trace_streams_byte_identical(
        self, width, depth, batch, cards, bucket_mb, contention
    ):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb)
        results = {}
        for engine in ("scalar", "vector"):
            system = HLS1Device(HLS1Config(num_cards=cards))
            results[engine] = HLS1Runtime(system).execute(
                schedule, hbm_contention=contention, engine=engine
            )
        assert_results_identical(results["scalar"], results["vector"])

    @given(width_st, depth_st, batch_st, bucket_st, contention_st)
    @settings(max_examples=20, deadline=None)
    def test_single_card_trace_streams_byte_identical(
        self, width, depth, batch, bucket_mb, contention
    ):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb, collectives=False)
        results = {}
        for engine in ("scalar", "vector"):
            results[engine] = Runtime(GaudiDevice()).execute(
                schedule, hbm_contention=contention, engine=engine
            )
        assert_results_identical(results["scalar"], results["vector"])

    @given(width_st, depth_st, batch_st, cards_st, bucket_st, contention_st)
    @settings(max_examples=10, deadline=None)
    def test_profile_result_aggregates_identical(
        self, width, depth, batch, cards, bucket_mb, contention
    ):
        graph = record_step(width, depth, batch)
        profiles = {}
        for engine in ("scalar", "vector"):
            options = dataclasses.replace(
                default_compiler_options(),
                bucket_mb=bucket_mb,
                hbm_contention=contention,
                sim_engine=engine,
            )
            profiler = HLS1Profiler(
                HLS1Config(num_cards=cards), options
            )
            profiles[engine] = profiler.profile(graph)
        ps, pv = profiles["scalar"], profiles["vector"]
        assert ps.timeline.events == pv.timeline.events
        assert ps.total_time_us == pv.total_time_us
        assert ps.exposed_comm_us == pv.exposed_comm_us
        assert ps.fabric_busy_us == pv.fabric_busy_us
        for engine_kind in (EngineKind.MME, EngineKind.TPC, EngineKind.DMA):
            assert ps.utilization(engine_kind) == pv.utilization(engine_kind)
            assert ps.idle_fraction(engine_kind) == pv.idle_fraction(
                engine_kind
            )

    @given(width_st, depth_st, batch_st, contention_st)
    @settings(max_examples=10, deadline=None)
    def test_single_card_profiler_aggregates_identical(
        self, width, depth, batch, contention
    ):
        graph = record_step(width, depth, batch)
        profiles = {}
        for engine in ("scalar", "vector"):
            options = dataclasses.replace(
                default_compiler_options(),
                hbm_contention=contention,
                sim_engine=engine,
            )
            profiler = SynapseProfiler(GaudiConfig(), options)
            profiles[engine] = profiler.profile(graph)
        ps, pv = profiles["scalar"], profiles["vector"]
        assert ps.timeline.events == pv.timeline.events
        assert ps.total_time_us == pv.total_time_us
