"""Edge-case tests for trace rendering and timeline utilities."""

import json

import pytest

from repro.hw.costmodel import EngineKind
from repro.synapse import (
    Timeline,
    TraceEvent,
    ascii_timeline,
    gap_report,
    validate_no_engine_overlap,
)
from repro.util.errors import ExecutionError


def simple_timeline():
    return Timeline([
        TraceEvent("mm", EngineKind.MME, 0.0, 50.0, src="matmul"),
        TraceEvent("sm", EngineKind.TPC, 50.0, 100.0, src="softmax"),
        TraceEvent("cp", EngineKind.DMA, 45.0, 10.0, src="dma"),
    ], name="t")


class TestAsciiTimeline:
    def test_empty_trace(self):
        assert ascii_timeline(Timeline()) == "(empty trace)"

    def test_zero_width(self):
        assert ascii_timeline(simple_timeline(), width=0) == "(empty trace)"

    def test_width_one(self):
        art = ascii_timeline(simple_timeline(), width=1)
        assert "MME" in art

    def test_idle_columns_are_spaces(self):
        tl = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.MME, 90.0, 10.0),
        ])
        art = ascii_timeline(tl, width=10, show_legend=False)
        mme_row = next(l for l in art.splitlines() if l.startswith(" MME"))
        body = mme_row.split("|")[1]
        assert " " in body  # the long idle middle

    def test_legend_toggle(self):
        art = ascii_timeline(simple_timeline(), show_legend=False)
        assert "legend" not in art

    def test_host_lane_only_when_used(self):
        art = ascii_timeline(simple_timeline())
        assert "HOST" not in art
        with_host = Timeline(list(simple_timeline().events) + [
            TraceEvent("rc", EngineKind.HOST, 0.0, 5.0, src="recompile"),
        ])
        assert "HOST" in ascii_timeline(with_host)

    def test_many_sources_cycle_glyphs(self):
        events = [
            TraceEvent(f"op{i}", EngineKind.TPC, i * 10.0, 10.0, src=f"s{i}")
            for i in range(70)
        ]
        art = ascii_timeline(Timeline(events), width=70)
        assert "legend" in art  # no crash with > 62 sources


class TestGapReport:
    def test_no_gaps(self):
        tl = Timeline([TraceEvent("a", EngineKind.MME, 0.0, 10.0)])
        text = gap_report(tl, EngineKind.MME, min_dur_us=1.0)
        assert "no idle gaps" in text

    def test_reports_largest_first(self):
        tl = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.MME, 15.0, 5.0),
            TraceEvent("c", EngineKind.MME, 100.0, 5.0),
        ])
        text = gap_report(tl, EngineKind.MME, min_dur_us=1.0, top=2)
        lines = text.splitlines()
        assert "80.00 us" in lines[1]  # the 20 -> 100 gap first


class TestTimelineEdges:
    def test_negative_duration_rejected(self):
        with pytest.raises(ExecutionError):
            Timeline([TraceEvent("a", EngineKind.MME, 0.0, -1.0)])

    def test_total_time_empty(self):
        assert Timeline().total_time_us == 0.0
        assert Timeline().utilization(EngineKind.MME) == 0.0

    def test_shifted(self):
        tl = simple_timeline().shifted(100.0)
        assert tl.events[0].start_us == 100.0
        assert tl.total_time_us == simple_timeline().total_time_us + 100.0

    def test_top_events(self):
        top = simple_timeline().top_events(2)
        assert [e.name for e in top] == ["sm", "mm"]

    def test_busy_by_src_all_engines(self):
        by = simple_timeline().busy_by_src()
        assert by == {"matmul": 50.0, "softmax": 100.0, "dma": 10.0}

    def test_src_share_zero_when_engine_idle(self):
        assert simple_timeline().src_share("softmax", EngineKind.HOST) == 0.0

    def test_overlap_validator_catches_violation(self):
        bad = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.MME, 5.0, 10.0),
        ])
        with pytest.raises(ExecutionError, match="overlap"):
            validate_no_engine_overlap(bad)

    def test_overlap_on_different_engines_is_fine(self):
        ok = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.TPC, 5.0, 10.0),
        ])
        validate_no_engine_overlap(ok)

    def test_chrome_trace_fields(self):
        data = json.loads(simple_timeline().to_chrome_trace())
        ev = data["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "tid"} <= set(ev)
        assert data["displayTimeUnit"] == "ms"

    def test_gaps_min_duration_filter(self):
        tl = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.MME, 11.0, 10.0),
            TraceEvent("c", EngineKind.MME, 100.0, 10.0),
        ])
        assert len(tl.gaps(EngineKind.MME)) == 2
        assert len(tl.gaps(EngineKind.MME, min_dur_us=5.0)) == 1
