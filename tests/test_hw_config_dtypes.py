"""Unit tests for repro.hw.config and repro.hw.dtypes."""

import numpy as np
import pytest

from repro.hw import (
    DMAConfig,
    DType,
    GaudiConfig,
    HBMConfig,
    HLS1Config,
    MMEConfig,
    TPCClusterConfig,
    TPC_VECTOR_BITS,
    dtype_info,
    itemsize,
    numpy_dtype,
    parse_dtype,
    simd_lanes,
)
from repro.util.errors import ConfigError
from repro.util.units import GIB, KIB


class TestDtypes:
    def test_itemsizes(self):
        assert itemsize(DType.FP32) == 4
        assert itemsize(DType.BF16) == 2
        assert itemsize(DType.INT8) == 1

    def test_simd_lanes_from_2048_bit_vpu(self):
        # Paper section 2.2: 2048-bit SIMD.
        assert TPC_VECTOR_BITS == 2048
        assert simd_lanes(DType.FP32) == 64
        assert simd_lanes(DType.BF16) == 128
        assert simd_lanes(DType.INT8) == 256

    def test_bf16_functional_carrier_is_float32(self):
        assert numpy_dtype(DType.BF16) == np.dtype(np.float32)

    def test_parse_dtype(self):
        assert parse_dtype("bf16") is DType.BF16
        assert parse_dtype(DType.FP32) is DType.FP32
        with pytest.raises(ValueError, match="unknown dtype"):
            parse_dtype("fp64")

    def test_info_is_float(self):
        assert dtype_info(DType.FP32).is_float
        assert not dtype_info(DType.INT32).is_float


class TestMMEConfig:
    def test_peak_tflops_default(self):
        # 128x128 MACs at 0.45 GHz: calibrated to paper Table 2
        # saturation of ~14.6 TFLOPS.
        cfg = MMEConfig()
        assert cfg.peak_tflops == pytest.approx(14.7456, rel=1e-6)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            MMEConfig(rows=0)
        with pytest.raises(ConfigError):
            MMEConfig(freq_ghz=-1.0)


class TestTPCConfig:
    def test_paper_architecture_facts(self):
        cfg = TPCClusterConfig()
        assert cfg.num_cores == 8
        assert cfg.vector_bits == 2048
        assert cfg.scalar_local_bytes == 1 * KIB
        assert cfg.vector_local_bytes == 80 * KIB
        assert cfg.global_access_cycles == 4

    def test_peak_tflops_bf16(self):
        cfg = TPCClusterConfig()
        # 8 cores x 128 bf16 lanes x 2 flops x 1.1 GHz = 2.2528 TFLOPS
        assert cfg.peak_tflops(DType.BF16) == pytest.approx(2.2528, rel=1e-6)

    def test_peak_scales_with_lanes(self):
        cfg = TPCClusterConfig()
        assert cfg.peak_tflops(DType.FP32) == pytest.approx(
            cfg.peak_tflops(DType.BF16) / 2
        )

    def test_special_cost_fallback(self):
        cfg = TPCClusterConfig()
        assert cfg.special_cost("exp") == 15
        assert cfg.special_cost("nonexistent") == cfg.default_special_cycles

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            TPCClusterConfig(reduction_eff=1.5)


class TestMemoryConfigs:
    def test_hbm_capacity_32gb(self):
        assert HBMConfig().capacity_bytes == 32 * GIB

    def test_effective_bandwidth(self):
        cfg = HBMConfig(bandwidth_bytes_per_s=1e12, efficiency=0.5)
        assert cfg.effective_bandwidth == pytest.approx(5e11)

    def test_dma_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigError):
            DMAConfig(bandwidth_bytes_per_s=0)


class TestGaudiConfig:
    def test_defaults_compose(self):
        cfg = GaudiConfig()
        assert cfg.default_dtype is DType.BF16
        assert cfg.mme.peak_tflops > cfg.tpc.peak_tflops(cfg.default_dtype)

    def test_with_tpc_cores(self):
        cfg = GaudiConfig().with_tpc_cores(4)
        assert cfg.tpc.num_cores == 4
        # original untouched (frozen dataclasses)
        assert GaudiConfig().tpc.num_cores == 8


class TestHLS1Config:
    def test_eight_cards(self):
        assert HLS1Config().num_cards == 8

    def test_rejects_zero_cards(self):
        with pytest.raises(ConfigError):
            HLS1Config(num_cards=0)
