"""The reorder planner's lazy min-heap vs the reference O(n²) scan.

The heap keys entries on ``(earliest start, program order)`` computed
against engine-free times at push. Free times only grow, so stored
keys are lower bounds: popping the min, recomputing, and re-pushing
when stale must select exactly the op the exhaustive ready-set scan
selects — same issue order, hence byte-identical timelines.
"""

from hypothesis import given, settings

from repro import ht
from repro.ht import functional as F
from repro.hw.device import GaudiDevice
from repro.synapse import GraphCompiler, Runtime
from repro.synapse.runtime import op_duration_us
from tests.test_property_compiler_runtime import (
    dims_strategy,
    program_strategy,
    record_random,
)


def _plan_both(schedule):
    runtime = Runtime(GaudiDevice())
    durations = [
        op_duration_us(runtime.device.cost_model, op) for op in schedule.ops
    ]
    t0 = runtime.device.now
    heap = runtime._plan_reorder(schedule, durations, t0)
    scan = runtime._plan_reorder_scan(schedule, durations, t0)
    return heap, scan


def _performer_schedule():
    from repro.models import TransformerLayer, paper_layer_config

    layer_cfg = paper_layer_config("performer")
    layer = TransformerLayer(layer_cfg, materialize=False)
    with ht.record("perf-heap", mode="symbolic") as rec:
        layer(ht.input_tensor((8, 512, layer_cfg.d_model), name="x"))
    return GraphCompiler().compile(rec.graph)


class TestHeapMatchesScan:
    @given(program_strategy, dims_strategy)
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_same_order(self, ops, dims):
        graph, _ = record_random(ops, dims)
        schedule = GraphCompiler().compile(graph)
        heap, scan = _plan_both(schedule)
        assert heap == scan

    def test_performer_layer_same_order(self):
        """The A1 benchmark workload: the order (and therefore the
        replayed timeline) is identical, not merely equivalent."""
        schedule = _performer_schedule()
        assert len(schedule.ops) > 30
        heap, scan = _plan_both(schedule)
        assert heap == scan

    def test_performer_timeline_byte_identical(self):
        schedule = _performer_schedule()
        runtime = Runtime(GaudiDevice())
        durations = [
            op_duration_us(runtime.device.cost_model, op)
            for op in schedule.ops
        ]
        t0 = runtime.device.now
        scan_order = runtime._plan_reorder_scan(schedule, durations, t0)
        ref = Runtime(GaudiDevice())
        want = ref._replay(schedule, scan_order, durations, t0)
        got = Runtime(GaudiDevice()).execute(
            schedule, reorder=True, hbm_contention=False
        ).timeline.events
        assert [
            (ev.name, ev.engine, ev.start_us, ev.dur_us) for ev in got
        ] == [
            (ev.name, ev.engine, ev.start_us, ev.dur_us) for ev in want
        ]

    def test_planned_order_is_valid_topologically(self):
        schedule = _performer_schedule()
        heap, _ = _plan_both(schedule)
        position = {idx: pos for pos, idx in enumerate(heap)}
        assert sorted(heap) == list(range(len(schedule.ops)))
        for op in schedule.ops:
            for dep in op.deps:
                assert position[dep] < position[op.index]
