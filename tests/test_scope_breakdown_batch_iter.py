"""Tests for the profiler scope breakdown and the epoch batch iterator."""

import numpy as np
import pytest

from repro.core import record_training_step
from repro.data import (
    CorpusConfig,
    SyntheticBookCorpus,
    WordTokenizer,
    batch_iterator,
)
from repro.synapse import SynapseProfiler
from repro.util.errors import DataError


@pytest.fixture(scope="module")
def gpt_profile():
    return SynapseProfiler().profile(record_training_step("gpt").graph)


class TestScopeBreakdown:
    def test_shares_sum_to_one(self, gpt_profile):
        rows = gpt_profile.scope_breakdown(depth=1)
        assert rows
        assert sum(share for _, _, share in rows) == pytest.approx(1.0)

    def test_sorted_descending(self, gpt_profile):
        rows = gpt_profile.scope_breakdown(depth=2)
        times = [us for _, us, _ in rows]
        assert times == sorted(times, reverse=True)

    def test_training_phases_present(self, gpt_profile):
        scopes = {scope for scope, _, _ in gpt_profile.scope_breakdown(depth=1)}
        assert "bwd" in scopes
        assert "gpt2" in scopes

    def test_depth_controls_granularity(self, gpt_profile):
        shallow = {s for s, _, _ in gpt_profile.scope_breakdown(depth=1)}
        deep = {s for s, _, _ in gpt_profile.scope_breakdown(depth=3)}
        assert len(deep) > len(shallow)

    def test_empty_profile(self):
        from repro import ht
        from repro.ht import functional as F

        with ht.record("tiny", mode="symbolic") as rec:
            F.reshape(ht.input_tensor((4,), name="x"), (2, 2))
        # everything elided -> no compute events
        profile = SynapseProfiler().profile(rec.graph)
        assert profile.scope_breakdown() == []


@pytest.fixture(scope="module")
def tokenizer_and_stream():
    corpus = SyntheticBookCorpus(CorpusConfig(
        vocab_words=100, num_books=1, sentences_per_book=60,
    ))
    tok = WordTokenizer.train(corpus, max_vocab=128)
    return tok, tok.encode(" ".join(corpus.token_stream()))


class TestBatchIterator:
    def test_clm_batches_shaped(self, tokenizer_and_stream):
        tok, stream = tokenizer_and_stream
        batches = list(batch_iterator(
            stream, tok, kind="clm", batch_size=4, seq_len=16,
            rng=np.random.default_rng(0),
        ))
        assert batches
        for b in batches:
            assert b.input_ids.shape == (4, 16)
            assert b.target_onehot.shape == (4, 16, tok.vocab_size)

    def test_mlm_batches_masked(self, tokenizer_and_stream):
        tok, stream = tokenizer_and_stream
        batch = next(batch_iterator(
            stream, tok, kind="mlm", batch_size=4, seq_len=32,
            rng=np.random.default_rng(1),
        ))
        assert batch.masked_positions.any()

    def test_epochs_multiply_batches(self, tokenizer_and_stream):
        tok, stream = tokenizer_and_stream

        def count(epochs):
            return sum(1 for _ in batch_iterator(
                stream, tok, kind="clm", batch_size=2, seq_len=16,
                epochs=epochs, rng=np.random.default_rng(2),
            ))

        assert count(3) == 3 * count(1)

    def test_epochs_differ(self, tokenizer_and_stream):
        tok, stream = tokenizer_and_stream
        it = batch_iterator(
            stream, tok, kind="clm", batch_size=2, seq_len=16,
            epochs=2, rng=np.random.default_rng(3),
        )
        per_epoch = sum(1 for _ in batch_iterator(
            stream, tok, kind="clm", batch_size=2, seq_len=16,
            rng=np.random.default_rng(3),
        ))
        batches = list(it)
        first = batches[0].input_ids
        second = batches[per_epoch].input_ids
        assert not np.array_equal(first, second)

    def test_reproducible_under_seed(self, tokenizer_and_stream):
        tok, stream = tokenizer_and_stream

        def first_batch(seed):
            return next(batch_iterator(
                stream, tok, kind="clm", batch_size=2, seq_len=8,
                rng=np.random.default_rng(seed),
            )).input_ids

        np.testing.assert_array_equal(first_batch(7), first_batch(7))

    def test_validation(self, tokenizer_and_stream):
        tok, stream = tokenizer_and_stream
        with pytest.raises(DataError, match="kind"):
            next(batch_iterator(stream, tok, kind="rlhf",
                                batch_size=2, seq_len=8))
        with pytest.raises(DataError, match="epochs"):
            next(batch_iterator(stream, tok, kind="clm",
                                batch_size=2, seq_len=8, epochs=0))
        with pytest.raises(DataError, match="empty"):
            next(batch_iterator([], tok, kind="clm",
                                batch_size=2, seq_len=8))
