"""HLS1Runtime: byte-identity, analytic cross-checks, A4/A12 studies."""

import dataclasses

import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.config import HLS1Config
from repro.hw.costmodel import EngineKind
from repro.hw.device import GaudiDevice, HLS1Device
from repro.hw.interconnect import RingAllReduce
from repro.core.scaling_study import (
    run_comm_overlap_ablation,
    run_scaling_study,
)
from repro.synapse import (
    GraphCompiler,
    HLS1Runtime,
    Runtime,
    default_compiler_options,
    validate_no_engine_overlap,
)
from repro.synapse.runtime import collective_plans


def record_tiny_step(d: int = 16, layers: int = 2, batch: int = 4):
    lins = [ht.Linear(d, d, materialize=False) for _ in range(layers)]
    with ht.record("tiny-train", mode="symbolic") as rec:
        h = ht.input_tensor((batch, d), name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


def compile_step(graph, **overrides):
    options = dataclasses.replace(
        default_compiler_options(), inject_collectives=True, **overrides
    )
    return GraphCompiler(options=options).compile(graph)


def event_key(ev):
    return (ev.name, ev.engine.value, ev.start_us, ev.dur_us, ev.card)


class TestSingleCardByteIdentity:
    def test_contended_trace_identical_to_runtime(self):
        graph = record_tiny_step()
        schedule = compile_step(graph)
        hls = HLS1Runtime(HLS1Device(HLS1Config(num_cards=1)))
        single = Runtime(GaudiDevice())
        r_hls = hls.execute(schedule)
        r_one = single.execute(schedule)
        assert r_hls.total_time_us == r_one.total_time_us
        assert (
            sorted(map(event_key, r_hls.timeline.events))
            == sorted(map(event_key, r_one.timeline.events))
        )
        assert r_hls.num_cards == 1
        assert r_hls.fabric_busy_us == 0.0

    def test_uncontended_trace_identical_to_runtime(self):
        graph = record_tiny_step()
        schedule = compile_step(graph)
        r_hls = HLS1Runtime(HLS1Device(HLS1Config(num_cards=1))).execute(
            schedule, hbm_contention=False
        )
        r_one = Runtime(GaudiDevice()).execute(
            schedule, hbm_contention=False
        )
        assert (
            sorted(map(event_key, r_hls.timeline.events))
            == sorted(map(event_key, r_one.timeline.events))
        )

    def test_single_card_plans_are_empty(self):
        graph = record_tiny_step()
        schedule = compile_step(graph)
        plans = collective_plans(schedule, 1, HLS1Config().interconnect)
        assert plans
        assert all(not plan.steps for plan in plans.values())


class TestMultiCardExecution:
    def setup_method(self):
        self.graph = record_tiny_step()

    def _run(self, num_cards, **compile_overrides):
        schedule = compile_step(self.graph, **compile_overrides)
        system = HLS1Device(HLS1Config(num_cards=num_cards))
        return HLS1Runtime(system).execute(schedule), schedule

    def test_no_overlap_equals_compute_plus_analytic_allreduce(self):
        result, schedule = self._run(4, comm_overlap=False)
        single = Runtime(GaudiDevice()).execute(schedule).total_time_us
        grad_bytes = schedule.stats["gradient_bytes"]
        allreduce = RingAllReduce(
            HLS1Config().interconnect
        ).cost(4, grad_bytes).time_us
        assert result.total_time_us == pytest.approx(
            single + allreduce, rel=1e-9
        )

    def test_bucketing_starts_communication_earlier(self):
        # On a toy graph the per-bucket latency terms outweigh the
        # hidden bytes (the win at real scale is asserted by the A12
        # test below), but the *mechanism* must hold: a fine-bucketed
        # schedule puts its first all-reduce on the wire before the
        # monolithic schedule's single collective becomes ready.
        r_fine, _ = self._run(4, bucket_mb=0.001)
        r_mono, _ = self._run(4, comm_overlap=False)
        first_nic = lambda r: min(
            ev.start_us for ev in r.timeline.events
            if ev.engine is EngineKind.NIC
        )
        assert first_nic(r_fine) < first_nic(r_mono)

    def test_every_card_traces_every_op(self):
        result, schedule = self._run(4)
        assert result.num_cards == 4
        cards = result.timeline.cards()
        assert cards == [0, 1, 2, 3]
        for c in cards:
            on_card = [ev for ev in result.timeline.events if ev.card == c]
            assert len(on_card) == len(schedule.ops)
        validate_no_engine_overlap(result.timeline)

    def test_collectives_synchronize_cards(self):
        result, _ = self._run(4)
        nic = [
            ev for ev in result.timeline.events
            if ev.engine is EngineKind.NIC
        ]
        assert nic
        by_name = {}
        for ev in nic:
            by_name.setdefault(ev.name, []).append(ev)
        for name, evs in by_name.items():
            ends = {ev.start_us + ev.dur_us for ev in evs}
            assert len(evs) == 4
            assert len(ends) == 1, f"{name} finished at {ends}"

    def test_exposed_comm_reported(self):
        r4, _ = self._run(4)
        r_mono, _ = self._run(4, comm_overlap=False)
        assert r4.exposed_comm_us > 0
        assert r_mono.exposed_comm_us > 0
        assert r4.fabric_busy_us > 0

    def test_multi_card_never_faster_than_single(self):
        result, schedule = self._run(8)
        single = Runtime(GaudiDevice()).execute(schedule).total_time_us
        assert result.total_time_us >= single


class TestScalingStudy:
    def test_a4_runs_on_event_driven_runtime(self):
        result = run_scaling_study("gpt", card_counts=(1, 2))
        assert result.rows[0].efficiency == pytest.approx(1.0)
        assert result.rows[0].allreduce_ms == 0.0
        assert result.rows[0].exposed_comm_ms == 0.0
        row2 = result.rows[1]
        assert row2.exposed_comm_ms > 0
        assert row2.analytic_step_ms > 0
        # simulated and analytic agree to first order (divergence is
        # documented on data_parallel_step_time_us)
        assert row2.step_time_ms == pytest.approx(
            row2.analytic_step_ms, rel=0.05
        )

    def test_a12_overlap_ablation(self):
        result = run_comm_overlap_ablation("gpt", num_cards=8)
        effs = [r.efficiency for r in result.rows]
        assert effs == sorted(effs)
        assert result.rows[-1].efficiency > result.rows[0].efficiency
        assert all(r.exposed_comm_ms >= 0 for r in result.rows)
        assert (
            result.rows[-1].exposed_comm_ms < result.rows[0].exposed_comm_ms
        )
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed
