"""Tests for artifact export, MFU metrics, and the Gaudi2 what-if."""

import json

import pytest

from repro.core import (
    profile_layer,
    run_e2e,
    run_generation_comparison,
    save_profile,
    save_study,
)
from repro.core.study import StudyReport
from repro.core.reference import ShapeCheck
from repro.hw import GaudiConfig, gaudi2_config
from repro.util.errors import ReproError


class TestGaudi2Config:
    def test_public_ratios(self):
        g1, g2 = GaudiConfig(), gaudi2_config()
        assert g2.tpc.num_cores == 24
        assert g2.hbm.capacity_bytes == 3 * g1.hbm.capacity_bytes
        assert g2.mme.peak_tflops > 2.5 * g1.mme.peak_tflops
        assert g2.hbm.bandwidth_bytes_per_s > 2 * g1.hbm.bandwidth_bytes_per_s

    def test_name(self):
        assert "gaudi2" in gaudi2_config().name


class TestGenerationComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_generation_comparison()

    def test_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_speedups_in_hardware_band(self, result):
        assert 2.0 < result.layer_speedup < 6.0
        assert 2.0 < result.e2e_speedup < 6.0

    def test_imbalance_is_architectural(self, result):
        # faster hardware does not change WHERE softmax runs
        assert result.layer_g2.softmax_tpc_share > 0.7

    def test_render(self, result):
        text = result.render()
        assert "Gaudi2" in text and "max batch" in text


class TestE2EMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e2e("gpt")

    def test_tokens_per_second(self, result):
        expected = 8 * 2048 / (result.profile.total_time_us / 1e6)
        assert result.tokens_per_second == pytest.approx(expected)

    def test_mfu_in_plausible_band(self, result):
        # bounded by the engine imbalance; must be > 0 and < 1
        assert 0.05 < result.mfu < 1.0

    def test_render_includes_throughput(self, result):
        text = result.render(width=50)
        assert "tokens/s" in text and "MFU" in text


class TestSaveProfile:
    def test_writes_all_artifacts(self, tmp_path):
        profile = profile_layer("linear")
        written = save_profile(profile, tmp_path)
        names = {p.name for p in written}
        stem = profile.graph_name
        assert f"{stem}.trace.json" in names
        assert f"{stem}.figure.txt" in names
        assert f"{stem}.summary.txt" in names
        assert f"{stem}.memory.txt" in names
        assert f"{stem}.metrics.json" in names
        for p in written:
            assert p.exists() and p.stat().st_size > 0

    def test_metrics_json_round_trips(self, tmp_path):
        profile = profile_layer("linear")
        written = save_profile(profile, tmp_path)
        metrics_path = next(p for p in written if p.suffix == ".json"
                            and "metrics" in p.name)
        data = json.loads(metrics_path.read_text())
        assert data["total_time_ms"] == pytest.approx(
            profile.total_time_ms
        )
        assert 0 <= data["mme_utilization"] <= 1

    def test_chrome_trace_is_valid_json(self, tmp_path):
        profile = profile_layer("linear")
        written = save_profile(profile, tmp_path)
        trace_path = next(p for p in written if p.name.endswith("trace.json"))
        data = json.loads(trace_path.read_text())
        assert data["traceEvents"]

    def test_creates_directory(self, tmp_path):
        profile = profile_layer("linear")
        target = tmp_path / "deep" / "nested"
        save_profile(profile, target)
        assert target.is_dir()


class TestSaveStudy:
    def test_writes_report_and_checks(self, tmp_path):
        report = StudyReport()
        report.add("Table X", "body text", [
            ShapeCheck("a-check", True, "1", "1"),
        ])
        path = save_study(report, tmp_path)
        assert path.read_text().startswith("Reproduction study report")
        checks = json.loads((tmp_path / "checks.json").read_text())
        assert checks[0]["name"] == "a-check"
        assert checks[0]["passed"] is True

    def test_empty_report_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="empty"):
            save_study(StudyReport(), tmp_path)
