"""The backend seam: registry, cache keying, lint, and invariants.

The backend abstraction promises two things at once: ``backend="wse"``
retargets the whole compile/execute stack at a different accelerator
model, and ``backend="gaudi"`` (the default) changes nothing at all.
These tests pin both sides:

* the registry contract (lookup, duplicate rejection, config
  coercion, role engines);
* cache-poisoning regression — the same graph compiled under
  ``gaudi`` then ``wse`` must never replay the other's schedule, in
  the in-memory tier *and* the on-disk recipe store;
* the ``pass-backend-coupled`` lint rule that keeps compiler passes
  off backend internals;
* hypothesis properties: an explicit ``backend="gaudi"`` compile is
  byte-identical to the default-options compile on every random
  graph, and the WSE path produces finite, positive, PE-grid-only
  timings on the same corpus;
* the e2e front door rejects unknown model names with a
  :class:`~repro.util.errors.DataError`, not a ``KeyError``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.core.e2e_llm import record_forward_step, record_training_step
from repro.core.sweep import SweepSpec, sweep_spec_from_cli
from repro.ht import functional as F
from repro.hw.backend import (
    GaudiBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.hw.backends.wse import (
    PEGridModel,
    WSEBackend,
    WSEConfig,
    WSEDevice,
)
from repro.hw.config import GaudiConfig
from repro.hw.costmodel import EngineKind, MatmulDims
from repro.hw.device import GaudiDevice
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    RecipeCache,
    Runtime,
    recipe_key,
)
from repro.synapse.lint import lint_passes
from repro.synapse.passes import CompilerPass
from repro.util.errors import ConfigError, DataError


def record_program(scale=1.0, rows=4, name="prog"):
    with ht.record(name, mode="concrete") as rec:
        a = ht.tensor(np.ones((rows, 6), dtype=np.float32), name="a")
        b = ht.tensor(np.ones((6, 8), dtype=np.float32), name="b")
        x = F.matmul(a, b)
        x = F.softmax(F.mul_scalar(x, scale), axis=-1)
        F.mean(x)
    return rec


def compute_engines(schedule):
    """Engines the schedule actually computes on (DMA/HOST/NIC aside)."""
    shared = {EngineKind.DMA, EngineKind.HOST, EngineKind.NIC}
    return {op.engine for op in schedule.ops} - shared


class TestRegistry:
    def test_builtins_registered(self):
        assert "gaudi" in backend_names()
        assert "wse" in backend_names()

    def test_lookup_returns_singletons(self):
        assert get_backend("gaudi") is get_backend("gaudi")
        assert isinstance(get_backend("gaudi"), GaudiBackend)
        assert isinstance(get_backend("wse"), WSEBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError, match="unknown backend 'tpu'"):
            get_backend("tpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend(GaudiBackend())

    def test_anonymous_backend_rejected(self):
        class Nameless(GaudiBackend):
            name = ""

        with pytest.raises(ConfigError, match="non-empty name"):
            register_backend(Nameless())

    def test_coerce_config_keeps_own_and_swaps_foreign(self):
        gaudi, wse = get_backend("gaudi"), get_backend("wse")
        mine = GaudiConfig()
        assert gaudi.coerce_config(mine) is mine
        assert isinstance(gaudi.coerce_config(WSEConfig()), GaudiConfig)
        assert isinstance(gaudi.coerce_config(None), GaudiConfig)
        theirs = WSEConfig()
        assert wse.coerce_config(theirs) is theirs
        assert isinstance(wse.coerce_config(GaudiConfig()), WSEConfig)

    def test_role_engines(self):
        gaudi, wse = get_backend("gaudi"), get_backend("wse")
        assert gaudi.matmul_engine is EngineKind.MME
        assert gaudi.vector_engine is EngineKind.TPC
        assert gaudi.supports_tpc_slicing
        assert wse.matmul_engine is EngineKind.PE
        assert wse.vector_engine is EngineKind.PE
        assert not wse.supports_tpc_slicing
        assert EngineKind.MME not in wse.engines
        assert EngineKind.TPC not in wse.engines

    def test_make_device_matches_backend(self):
        assert isinstance(get_backend("gaudi").make_device(), GaudiDevice)
        device = get_backend("wse").make_device()
        assert isinstance(device, WSEDevice)
        assert set(device.timelines) == set(get_backend("wse").engines)


class TestCachePoisoning:
    """PR regression: backend identity must key BOTH recipe-cache tiers.

    Before the backend field joined ``options_signature``, a recipe
    compiled for one backend could replay verbatim under the other —
    a Gaudi MME/TPC schedule executing on a device with neither
    engine. Same graph, different backend, must always miss.
    """

    def test_backend_changes_recipe_key(self):
        graph = record_program().graph
        config = GaudiConfig()
        assert (
            recipe_key(graph, config, CompilerOptions(backend="gaudi"))
            != recipe_key(graph, config, CompilerOptions(backend="wse"))
        )

    def test_default_key_equals_explicit_gaudi_key(self):
        graph = record_program().graph
        config = GaudiConfig()
        assert recipe_key(graph, config, CompilerOptions()) == recipe_key(
            graph, config, CompilerOptions(backend="gaudi")
        )

    def test_memory_tier_never_replays_across_backends(self):
        cache = RecipeCache()
        gaudi = GraphCompiler(
            options=CompilerOptions(backend="gaudi"), cache=cache
        )
        first = gaudi.compile(record_program().graph)
        assert gaudi.last_cache_hit is False
        assert compute_engines(first) == {EngineKind.MME, EngineKind.TPC}

        wse = GraphCompiler(
            options=CompilerOptions(backend="wse"), cache=cache
        )
        second = wse.compile(record_program().graph)
        assert wse.last_cache_hit is False, (
            "wse compile replayed the gaudi recipe from the shared cache"
        )
        assert compute_engines(second) == {EngineKind.PE}
        assert len(cache) == 2

        # and the original gaudi entry still hits for gaudi
        third = gaudi.compile(record_program().graph)
        assert gaudi.last_cache_hit is True
        assert compute_engines(third) == {EngineKind.MME, EngineKind.TPC}

    def test_disk_tier_never_replays_across_backends(self, tmp_path):
        graph = record_program().graph
        GraphCompiler(
            options=CompilerOptions(backend="gaudi"),
            cache=RecipeCache(save_dir=tmp_path),
        ).compile(graph)
        assert len(list(tmp_path.glob("*.json"))) == 1

        cache = RecipeCache(save_dir=tmp_path)
        compiler = GraphCompiler(
            options=CompilerOptions(backend="wse"), cache=cache
        )
        schedule = compiler.compile(record_program().graph)
        assert compiler.last_cache_hit is False, (
            "wse compile disk-hit the gaudi recipe blob"
        )
        assert cache.disk_hits == 0
        assert compute_engines(schedule) == {EngineKind.PE}
        # both backends' recipes now coexist on disk ...
        assert len(list(tmp_path.glob("*.json"))) == 2

        # ... and each replays only for its own backend
        reread = RecipeCache(save_dir=tmp_path)
        verifier = GraphCompiler(
            options=CompilerOptions(backend="wse"), cache=reread
        )
        replayed = verifier.compile(record_program().graph)
        assert verifier.last_cache_hit is True
        assert reread.disk_hits == 1
        assert compute_engines(replayed) == {EngineKind.PE}


class TestBackendCouplingLint:
    def test_default_pipeline_is_clean(self):
        assert [
            w for w in lint_passes() if w.rule == "pass-backend-coupled"
        ] == []

    def test_coupled_pass_flagged(self):
        class HardwiredPass(CompilerPass):
            name = "hardwired"
            signature_deps = ("structure",)

            def run(self, state):
                # names a Gaudi engine instead of asking state.backend
                return {
                    "n": len(state.graph.nodes),
                    "engine": EngineKind.MME.value,
                }

        findings = lint_passes([HardwiredPass()])
        assert [w.rule for w in findings] == ["pass-backend-coupled"]
        assert "hardwired" in findings[0].message
        assert "state.backend" in findings[0].message

    def test_config_poking_pass_flagged(self):
        class PricePeekPass(CompilerPass):
            name = "price-peek"
            signature_deps = ("structure",)

            def run(self, state):
                return {
                    "n": len(state.graph.nodes),
                    "peak": state.config.mme.peak_tflops,
                }

        rules = [w.rule for w in lint_passes([PricePeekPass()])]
        assert rules == ["pass-backend-coupled"]


UNARY = ("exp", "relu", "sigmoid", "neg")
BINARY = ("add", "mul", "maximum")


def build_program(draw_ops, dims):
    rows, inner, cols = dims
    rng = np.random.default_rng(4242)
    a = ht.tensor(rng.normal(size=(rows, inner)).astype(np.float32), name="a")
    b = ht.tensor(rng.normal(size=(inner, cols)).astype(np.float32), name="b")
    pool = [F.matmul(a, b)]
    for kind, idx in draw_ops:
        src = pool[idx % len(pool)]
        if kind < len(UNARY):
            out = getattr(F, UNARY[kind])(src)
        elif kind < len(UNARY) + len(BINARY):
            other = pool[(idx + 1) % len(pool)]
            out = getattr(F, BINARY[kind - len(UNARY)])(src, other)
        else:
            out = F.softmax(src, axis=-1)
        pool.append(out)
    total = pool[0]
    for t in pool[1:]:
        total = F.add(total, t)
    return F.mean(total)


def record_random(ops, dims):
    with ht.record("backend-random", mode="concrete") as rec:
        build_program(ops, dims)
    return rec.graph


program_strategy = st.lists(
    st.tuples(st.integers(0, len(UNARY) + len(BINARY)), st.integers(0, 31)),
    min_size=1, max_size=8,
)
dims_strategy = st.tuples(
    st.integers(2, 12), st.integers(2, 12), st.integers(2, 12)
)


def event_tuples(result):
    return sorted(
        (ev.name, ev.engine.value, ev.start_us, ev.dur_us)
        for ev in result.timeline.events
    )


class TestGaudiByteIdentity:
    """``backend="gaudi"`` is the pre-refactor path, bit for bit."""

    @given(program_strategy, dims_strategy, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_explicit_gaudi_matches_default(self, ops, dims, reorder):
        graph = record_random(ops, dims)
        default = GraphCompiler(options=CompilerOptions()).compile(graph)
        explicit = GraphCompiler(
            options=CompilerOptions(backend="gaudi")
        ).compile(graph)
        assert [
            (op.label, op.engine, tuple(op.deps)) for op in explicit.ops
        ] == [(op.label, op.engine, tuple(op.deps)) for op in default.ops]
        assert explicit.memory.peak_bytes == default.memory.peak_bytes

        run_d = Runtime(GaudiDevice()).execute(default, reorder=reorder)
        run_e = Runtime(GaudiDevice()).execute(explicit, reorder=reorder)
        assert run_e.total_time_us == run_d.total_time_us
        assert event_tuples(run_e) == event_tuples(run_d)


class TestWSESmoke:
    """The WSE path stays finite, positive, and PE-grid-only."""

    @given(program_strategy, dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_profile_finite(self, ops, dims):
        graph = record_random(ops, dims)
        schedule = GraphCompiler(
            options=CompilerOptions(backend="wse")
        ).compile(graph)
        assert compute_engines(schedule) == {EngineKind.PE}
        result = Runtime(WSEDevice()).execute(schedule)
        assert np.isfinite(result.total_time_us)
        assert result.total_time_us > 0.0
        for ev in result.timeline.events:
            assert np.isfinite(ev.dur_us) and ev.dur_us >= 0.0
            assert ev.engine in get_backend("wse").engines

    @given(
        st.integers(1, 64),
        st.integers(1, 1 << 14),
        st.integers(1, 1 << 14),
        st.integers(1, 1 << 14),
    )
    @settings(max_examples=50, deadline=None)
    def test_pe_grid_costs_positive_on_any_geometry(self, batch, m, k, n):
        cfg = WSEConfig()
        model = PEGridModel(cfg.pe, cfg.memoryx)
        dims = MatmulDims(batch=batch, m=m, k=k, n=n)
        tflops = model.achieved_tflops(dims)
        assert np.isfinite(tflops) and 0.0 < tflops
        assert tflops <= cfg.pe.peak_matmul_tflops * 2.0  # fp8 ceiling
        time_us = model.matmul_time_us(dims)
        assert np.isfinite(time_us)
        assert time_us >= cfg.pe.launch_overhead_us


class TestSweepBackendAxis:
    def test_backend_axis_labels_and_overrides(self):
        spec = SweepSpec(
            name="t", models=("gpt",),
            policies=(("default", ()), ("ddp", (("inject_collectives", True),))),
            backend=("gaudi", "wse"),
        )
        points = spec.expand()
        assert [p.policy for p in points] == [
            "default@gaudi", "default@wse", "ddp@gaudi", "ddp@wse",
        ]
        assert ("backend", "wse") in points[1].overrides
        assert ("backend", "gaudi") in points[2].overrides

    def test_non_gaudi_backend_rejects_populations(self):
        spec = SweepSpec(name="t", cards=(4,), backend=("wse",))
        with pytest.raises(ValueError, match="single device"):
            spec.expand()

    def test_cli_spec_validates_backend_names(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            sweep_spec_from_cli(
                ("gpt",), (8,), (128,), (1,), ("default",),
                backend=("nope",),
            )


class TestE2EModelErrors:
    def test_training_step_unknown_model(self):
        with pytest.raises(
            DataError, match=r"unknown model 'nope'; use 'gpt' or 'bert'"
        ):
            record_training_step("nope")

    def test_forward_step_unknown_model(self):
        with pytest.raises(
            DataError, match=r"unknown model 'nope'; use 'gpt' or 'bert'"
        ):
            record_forward_step("nope")
