"""Correctness + structural tests for the attention variants."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.models import (
    AttentionConfig,
    ChunkedAttention,
    LinearAttention,
    PerformerAttention,
    SoftmaxAttention,
    build_attention,
    reference_softmax_attention,
)
from repro.util.errors import ConfigError, ShapeError

CFG = AttentionConfig(num_heads=2, head_dim=4)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestSoftmaxAttention:
    def test_matches_numpy_reference(self, rng):
        attn = SoftmaxAttention(CFG, rng=rng)
        x = rng.normal(size=(3, 6, 8))
        with ht.record():
            out = attn(ht.tensor(x)).numpy()
        ref = reference_softmax_attention(
            x, attn.wq.weight.data, attn.wk.weight.data,
            attn.wv.weight.data, attn.wo.weight.data, CFG.num_heads,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-6)

    def test_causal_masks_future(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, causal=True)
        attn = SoftmaxAttention(cfg, rng=rng)
        x = rng.normal(size=(2, 5, 8))
        with ht.record():
            base = attn(ht.tensor(x)).numpy()
            # Perturbing a future position must not change earlier outputs.
            x2 = x.copy()
            x2[:, -1, :] += 10.0
            pert = attn(ht.tensor(x2)).numpy()
        np.testing.assert_allclose(base[:, :-1], pert[:, :-1], rtol=1e-4,
                                   atol=1e-5)
        assert not np.allclose(base[:, -1], pert[:, -1])

    def test_causal_reference(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, causal=True)
        attn = SoftmaxAttention(cfg, rng=rng)
        x = rng.normal(size=(2, 5, 8))
        with ht.record():
            out = attn(ht.tensor(x)).numpy()
        ref = reference_softmax_attention(
            x, attn.wq.weight.data, attn.wk.weight.data,
            attn.wv.weight.data, attn.wo.weight.data, 2, causal=True,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-6)

    def test_wrong_width_rejected(self, rng):
        attn = SoftmaxAttention(CFG, rng=rng)
        with ht.record():
            with pytest.raises(ShapeError, match="width"):
                attn(ht.randn(2, 4, 10))

    def test_differentiable_end_to_end(self, rng):
        attn = SoftmaxAttention(CFG, rng=rng)
        with ht.record():
            x = ht.tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
            loss = F.mean(F.square(attn(x)))
            loss.backward()
            assert x.grad is not None
            assert attn.wq.weight.grad is not None
            assert np.isfinite(x.grad.numpy()).all()


class TestLinearAttention:
    def test_output_shape_and_finite(self, rng):
        attn = LinearAttention(CFG, rng=rng)
        with ht.record():
            out = attn(ht.tensor(rng.normal(size=(2, 6, 8))))
            assert out.shape == (2, 6, 8)
            assert np.isfinite(out.numpy()).all()

    def test_is_row_convex_combination(self, rng):
        # With the positive elu+1 feature map, each output row (before
        # W_o) is an average of value rows: outputs stay in the convex
        # hull, so |ctx| <= max |v|. We test via bounded magnitudes.
        cfg = AttentionConfig(num_heads=1, head_dim=4)
        attn = LinearAttention(cfg, rng=rng)
        x = rng.normal(size=(1, 10, 4))
        with ht.record():
            out = attn(ht.tensor(x)).numpy()
        assert np.isfinite(out).all()

    def test_equals_explicit_quadratic_form(self, rng):
        """phi(Q)(phi(K)^T V) must equal (phi(Q)phi(K)^T) V exactly."""
        cfg = AttentionConfig(num_heads=1, head_dim=4)
        attn = LinearAttention(cfg, rng=rng)
        x = rng.normal(size=(1, 7, 4))
        with ht.record():
            out = attn(ht.tensor(x)).numpy()

        def phi(z):
            return np.where(z > 0, z, np.expm1(z)) + 1.0

        q = (x @ attn.wq.weight.data).reshape(1, 7, 1, 4).transpose(0, 2, 1, 3)
        k = (x @ attn.wk.weight.data).reshape(1, 7, 1, 4).transpose(0, 2, 1, 3)
        v = (x @ attn.wv.weight.data).reshape(1, 7, 1, 4).transpose(0, 2, 1, 3)
        qp, kp = phi(q), phi(k)
        quad = (qp @ kp.transpose(0, 1, 3, 2)) @ v
        norm = (qp @ kp.transpose(0, 1, 3, 2)) @ np.ones_like(v)
        ref = (quad / norm).transpose(0, 2, 1, 3).reshape(1, 7, 4)
        ref = ref @ attn.wo.weight.data
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("fm", ["elu1", "relu", "leaky_relu", "gelu", "glu"])
    def test_all_feature_maps_run(self, rng, fm):
        cfg = AttentionConfig(num_heads=2, head_dim=4, feature_map=fm)
        attn = LinearAttention(cfg, rng=rng)
        with ht.record():
            out = attn(ht.tensor(rng.normal(size=(2, 6, 8))))
            assert out.shape == (2, 6, 8)

    def test_causal_not_modeled(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, causal=True)
        attn = LinearAttention(cfg, rng=rng)
        with ht.record():
            with pytest.raises(ConfigError, match="causal"):
                attn(ht.randn(2, 4, 8))


class TestPerformerAttention:
    def test_output_shape(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, performer_features=8)
        attn = PerformerAttention(cfg, rng=rng)
        with ht.record():
            out = attn(ht.tensor(rng.normal(size=(2, 6, 8))))
            assert out.shape == (2, 6, 8)
            assert np.isfinite(out.numpy()).all()

    def test_approximates_softmax_attention_loosely(self, rng):
        # FAVOR is an unbiased softmax-kernel estimator; with plenty of
        # features the two attentions should correlate strongly.
        cfg = AttentionConfig(num_heads=1, head_dim=8, performer_features=256)
        perf = PerformerAttention(cfg, rng=rng)
        soft = SoftmaxAttention(cfg, rng=np.random.default_rng(7))
        # share projection weights
        for p_lin, s_lin in ((perf.wq, soft.wq), (perf.wk, soft.wk),
                             (perf.wv, soft.wv), (perf.wo, soft.wo)):
            p_lin.weight.data = s_lin.weight.data.copy()
        x = rng.normal(size=(1, 12, 8)) * 0.3
        with ht.record():
            a = perf(ht.tensor(x)).numpy()
            b = soft(ht.tensor(x)).numpy()
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.7

    def test_listing1_op_sequence_recorded(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, performer_features=8)
        attn = PerformerAttention(cfg, rng=rng)
        with ht.record() as rec:
            attn(ht.randn(1, 4, 8))
        ops = [n.op for n in rec.graph.nodes]
        # the listing's signature ops: two exps, a ones_like, four extra
        # matmuls beyond the projections
        assert ops.count("exp") == 2
        assert "ones_like" in ops
        assert ops.count("matmul") >= 8

    def test_features_not_trainable(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, performer_features=8)
        attn = PerformerAttention(cfg, rng=rng)
        assert not attn.features.requires_grad


class TestChunkedAttention:
    def test_matches_blockdiag_reference(self, rng):
        cfg = AttentionConfig(num_heads=1, head_dim=4, chunk_size=4)
        attn = ChunkedAttention(cfg, rng=rng)
        x = rng.normal(size=(1, 8, 4))
        with ht.record():
            out = attn(ht.tensor(x)).numpy()
        # reference: independent softmax attention per 4-token chunk
        ref_parts = []
        for c in range(2):
            xc = x[:, 4 * c: 4 * (c + 1), :]
            q = xc @ attn.wq.weight.data
            k = xc @ attn.wk.weight.data
            v = xc @ attn.wv.weight.data
            s = q @ k.transpose(0, 2, 1) / 2.0
            e = np.exp(s - s.max(-1, keepdims=True))
            p = e / e.sum(-1, keepdims=True)
            ref_parts.append(p @ v)
        ref = np.concatenate(ref_parts, axis=1) @ attn.wo.weight.data
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_indivisible_sequence_rejected(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, chunk_size=4)
        attn = ChunkedAttention(cfg, rng=rng)
        with ht.record():
            with pytest.raises(ShapeError, match="divisible"):
                attn(ht.randn(1, 6, 8))

    def test_causal_chunked_runs(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4, chunk_size=4,
                              causal=True)
        attn = ChunkedAttention(cfg, rng=rng)
        with ht.record():
            out = attn(ht.randn(1, 8, 8))
            assert out.shape == (1, 8, 8)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("softmax", SoftmaxAttention),
            ("linear", LinearAttention),
            ("performer", PerformerAttention),
            ("chunked", ChunkedAttention),
        ],
    )
    def test_builds_right_class(self, kind, cls):
        cfg = AttentionConfig(num_heads=2, head_dim=4, kind=kind)
        assert isinstance(build_attention(cfg, materialize=False), cls)
