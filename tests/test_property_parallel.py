"""Property-based tests: TP/PP sharding never touches the numerics.

The parallelism passes transform only the *cost model* — sharded
WorkItem geometry, injected NIC collectives, stage cuts. The graph's
functional semantics must be untouched: a forward+backward+optimizer
step compiled at any ``(tp, pp)`` executes to byte-identical values
(``.tobytes()`` equality, not allclose) as the unsharded compile of
the same recording. ``execute_schedule`` additionally self-checks
every scheduled op against the graph-level reference, so a sharded
schedule that dropped or reordered member nodes fails loudly.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.synapse import (
    GraphCompiler,
    default_compiler_options,
    execute_schedule,
)


def record_train_mlp(width, depth, batch, seed):
    """A concrete fwd+bwd+SGD MLP step; returns (graph, inputs)."""
    lins = [ht.Linear(width, width, materialize=True, name=f"lin{i}")
            for i in range(depth)]
    params = [p for lin in lins for p in lin.parameters()]
    # snapshot parameters before SGD mutates them in concrete mode
    inputs = {p.name: p.data.copy() for p in params}
    rng = np.random.default_rng(seed)
    x_np = rng.normal(size=(batch, width)).astype(np.float32)
    inputs["x"] = x_np
    with ht.record("parallel-prop", mode="concrete") as rec:
        h = ht.tensor(x_np, name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        ht.SGD(params, lr=0.01).step()
    return rec.graph, inputs


def compile_layout(graph, tp=1, pp=1):
    options = dataclasses.replace(
        default_compiler_options(),
        inject_collectives=True,
        tp=tp,
        pp=pp,
        microbatches=pp,
    )
    return GraphCompiler(options=options).compile(graph)


def assert_env_byte_identical(ref_env, env):
    assert set(ref_env) == set(env)
    for vid, ref in ref_env.items():
        assert env[vid].tobytes() == ref.tobytes(), f"vid {vid} diverged"


width_st = st.sampled_from([4, 6, 8, 16])
depth_st = st.integers(1, 3)
batch_st = st.integers(2, 6)
seed_st = st.integers(0, 2**16)


class TestShardedNumerics:
    @given(width_st, depth_st, batch_st, seed_st,
           st.sampled_from([2, 4, 8]))
    @settings(max_examples=15, deadline=None)
    def test_tensor_parallel_byte_identical(
        self, width, depth, batch, seed, tp
    ):
        """TP-sharded fwd+bwd values equal the unsharded compile's."""
        graph, inputs = record_train_mlp(width, depth, batch, seed)
        ref_env = execute_schedule(compile_layout(graph), inputs)
        env = execute_schedule(compile_layout(graph, tp=tp), inputs)
        assert_env_byte_identical(ref_env, env)

    @given(width_st, depth_st, batch_st, seed_st, st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_partition_byte_identical(
        self, width, depth, batch, seed, pp
    ):
        """PP-partitioned fwd+bwd values equal the unpartitioned."""
        graph, inputs = record_train_mlp(width, depth, batch, seed)
        ref_env = execute_schedule(compile_layout(graph), inputs)
        env = execute_schedule(compile_layout(graph, pp=pp), inputs)
        assert_env_byte_identical(ref_env, env)

    @given(width_st, st.integers(2, 3), batch_st, seed_st,
           st.sampled_from([2, 4]), st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_tp_and_pp_compose_byte_identical(
        self, width, depth, batch, seed, tp, pp
    ):
        graph, inputs = record_train_mlp(width, depth, batch, seed)
        ref_env = execute_schedule(compile_layout(graph), inputs)
        env = execute_schedule(compile_layout(graph, tp=tp, pp=pp), inputs)
        assert_env_byte_identical(ref_env, env)

    @given(width_st, depth_st, batch_st, seed_st)
    @settings(max_examples=10, deadline=None)
    def test_parallel_nic_ops_move_no_values(
        self, width, depth, batch, seed
    ):
        """Injected TP/PP ops are cost-only: no node_ids, no writes."""
        graph, _ = record_train_mlp(width, depth, batch, seed)
        schedule = compile_layout(graph, tp=2, pp=2)
        for op in schedule.ops:
            if op.scope in ("tp", "pp"):
                assert not op.node_ids, op.label
                assert not op.writes, op.label
