"""Incremental recompilation: pass-result reuse that stays byte-identical.

The pass cache (``repro.synapse.passes.incremental``) replays
structural pass decisions across recipe-cache misses that change only
geometry (batch/seq) or downstream options. These tests pin the three
contracts: replayed compiles equal cold compiles exactly, reuse
actually happens where the design says it does (and not where it must
not), and the declaration-audit lint keeps future passes honest.
"""

import dataclasses
import json

import pytest

from repro import ht
from repro.ht import functional as F
from repro.synapse import GraphCompiler, default_compiler_options
from repro.synapse.lint import lint_passes
from repro.synapse.passes import (
    CompilerPass,
    default_passes,
    pass_cache_stats,
    reset_pass_cache,
)
from repro.synapse.recipe import geometry_signature, structure_signature
from repro.synapse.serialize import schedule_to_json


@pytest.fixture(autouse=True)
def _fresh_pass_cache():
    reset_pass_cache()
    yield
    reset_pass_cache()


def record_step(batch, width=32, depth=3):
    lins = [ht.Linear(width, width, materialize=False) for _ in range(depth)]
    with ht.record("inc-step", mode="symbolic") as rec:
        h = ht.input_tensor((batch, width), name="x")
        for lin in lins:
            h = F.softmax(lin(h), axis=-1)
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


def compile_graph(graph, *, incremental, **overrides):
    options = dataclasses.replace(
        default_compiler_options(),
        incremental=incremental,
        use_recipe_cache=False,
        inject_collectives=True,
        **overrides,
    )
    return GraphCompiler(options=options).compile(graph)


def canonical(schedule) -> dict:
    """Schedule content minus stats (stats carry wall-clock noise)."""
    blob = json.loads(schedule_to_json(schedule))
    blob.pop("stats", None)
    return blob


class TestComponentSignatures:
    def test_batch_change_preserves_structure(self):
        g4, g16 = record_step(4), record_step(16)
        assert structure_signature(g4) == structure_signature(g16)
        assert geometry_signature(g4) != geometry_signature(g16)

    def test_structure_change_detected(self):
        deep = record_step(4, depth=4)
        assert structure_signature(record_step(4)) != structure_signature(deep)

    def test_scalar_attr_geometry_is_in_geometry_sig(self):
        # mean_bwd's alpha = 1/numel is a *scalar* attr that changes
        # with batch — the signature split must classify it geometry
        g4, g8 = record_step(4), record_step(8)
        a4 = {n.op: n.attrs for n in g4.nodes if n.src == "mean_bwd"}
        a8 = {n.op: n.attrs for n in g8.nodes if n.src == "mean_bwd"}
        assert a4 != a8  # the premise: batch leaks into a scalar attr
        assert structure_signature(g4) == structure_signature(g8)


class TestIncrementalReuse:
    def test_batch_sweep_replays_structural_passes(self):
        compile_graph(record_step(4), incremental=True)
        warm = compile_graph(record_step(8), incremental=True)
        modes = {
            e["pass"]: e["incremental"]
            for e in warm.stats["passes"] if e["incremental"]
        }
        assert modes == {
            "validate": "hit",
            "lower_composites": "miss",  # rewritten shapes differ
            "view_elision": "hit",
            "elementwise_fusion": "hit",
            "recompile_injection": "hit",
            "dma_staging": "hit",
        }
        assert warm.stats["incremental"] == {"reused": 5, "recomputed": 1}

    def test_option_sweep_replays_everything_cacheable(self):
        graph = record_step(8)
        compile_graph(graph, incremental=True)
        warm = compile_graph(graph, incremental=True, bucket_mb=1.0)
        assert warm.stats["incremental"] == {"reused": 6, "recomputed": 0}

    def test_read_option_change_invalidates_its_pass(self):
        graph = record_step(8)
        compile_graph(graph, incremental=True)
        warm = compile_graph(graph, incremental=True, recompile_once=False)
        modes = {
            e["pass"]: e["incremental"]
            for e in warm.stats["passes"] if e["incremental"]
        }
        assert modes["recompile_injection"] == "miss"
        assert modes["elementwise_fusion"] == "hit"

    def test_upstream_ablation_invalidates_downstream(self):
        # fusion off changes the grouping; dma_staging results recorded
        # under the fused pipeline must not replay into the unfused one
        graph = record_step(8)
        fused = compile_graph(graph, incremental=True)
        unfused = compile_graph(
            graph, incremental=True, fuse_elementwise=False
        )
        modes = {
            e["pass"]: e["incremental"]
            for e in unfused.stats["passes"] if e["incremental"]
        }
        assert modes["dma_staging"] == "miss"
        reference = compile_graph(
            graph, incremental=False, fuse_elementwise=False
        )
        assert canonical(unfused) == canonical(reference)
        assert canonical(fused) != canonical(unfused)

    def test_incremental_off_never_touches_cache(self):
        compile_graph(record_step(4), incremental=False)
        stats = pass_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    @pytest.mark.parametrize("batch", [4, 8, 16])
    def test_replayed_compiles_byte_identical(self, batch):
        # warm the cache from a different sweep point first
        compile_graph(record_step(2), incremental=True)
        cold = compile_graph(record_step(batch), incremental=False)
        warm = compile_graph(record_step(batch), incremental=True)
        assert canonical(warm) == canonical(cold)


class TestPassDeclarationLint:
    def test_default_pipeline_is_clean(self):
        assert lint_passes() == []

    def test_over_declared_geometry_flagged(self):
        class LazyPass(CompilerPass):
            name = "lazy"
            signature_deps = ("structure", "geometry")

            def run(self, state):
                return {"values": len(state.graph.nodes)}

        findings = lint_passes([LazyPass()])
        assert [w.rule for w in findings] == ["pass-geometry-over-declared"]

    def test_under_declared_geometry_flagged(self):
        class SneakyPass(CompilerPass):
            name = "sneaky"
            signature_deps = ("structure",)

            def run(self, state):
                return {"rows": state.graph.value(0).shape[0]}

        findings = lint_passes([SneakyPass()])
        assert [w.rule for w in findings] == ["pass-geometry-under-declared"]

    def test_default_passes_declare_known_split(self):
        structural = {
            "validate", "view_elision", "elementwise_fusion",
            "recompile_injection", "dma_staging",
        }
        for compiler_pass in default_passes():
            deps = compiler_pass.signature_deps
            if compiler_pass.name in structural:
                assert deps == ("structure",), compiler_pass.name
                assert compiler_pass.incremental
            else:
                assert "geometry" in deps, compiler_pass.name
