"""Unit tests for repro.util.units."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import units


class TestConversions:
    def test_us_to_ms(self):
        assert units.us_to_ms(1500.0) == 1.5

    def test_ms_to_us(self):
        assert units.ms_to_us(2.5) == 2500.0

    def test_s_to_us(self):
        assert units.s_to_us(0.001) == 1000.0

    def test_us_to_s(self):
        assert units.us_to_s(1_000_000.0) == 1.0

    @given(st.floats(min_value=1e-9, max_value=1e9, allow_nan=False))
    def test_ms_round_trip(self, value):
        assert math.isclose(units.us_to_ms(units.ms_to_us(value)), value)

    @given(st.floats(min_value=1e-9, max_value=1e9, allow_nan=False))
    def test_s_round_trip(self, value):
        assert math.isclose(units.us_to_s(units.s_to_us(value)), value)


class TestTflops:
    def test_basic(self):
        # 1e12 FLOPs in one second is exactly 1 TFLOP/s.
        assert units.tflops(1e12, units.s_to_us(1.0)) == pytest.approx(1.0)

    def test_zero_duration_is_zero_not_error(self):
        assert units.tflops(1e9, 0.0) == 0.0

    def test_scales_linearly_with_flops(self):
        t = units.s_to_us(2.0)
        assert units.tflops(2e12, t) == pytest.approx(2 * units.tflops(1e12, t))


class TestFormatting:
    def test_fmt_time_us_microseconds(self):
        assert units.fmt_time_us(12.345) == "12.35 us"

    def test_fmt_time_us_milliseconds(self):
        assert units.fmt_time_us(30_100.0) == "30.10 ms"

    def test_fmt_time_us_seconds(self):
        assert units.fmt_time_us(2_500_000.0) == "2.500 s"

    def test_fmt_time_negative(self):
        assert units.fmt_time_us(-1500.0) == "-1.50 ms"

    def test_fmt_bytes_scales(self):
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(2048) == "2.00 KiB"
        assert units.fmt_bytes(3 * units.MIB) == "3.00 MiB"
        assert units.fmt_bytes(32 * units.GIB) == "32.00 GiB"

    def test_fmt_flops(self):
        assert units.fmt_flops(2.5e12) == "2.50 TFLOP"
        assert units.fmt_flops(3.0e9) == "3.00 GFLOP"
        assert units.fmt_flops(10.0) == "10 FLOP"

    def test_fmt_rate(self):
        assert units.fmt_rate(14.59) == "14.59 TFLOPS"
