"""Unit tests for repro.hw.costmodel — including the Table 2 calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import (
    CostModel,
    DType,
    EngineKind,
    GaudiConfig,
    MatmulDims,
    OpClass,
    WorkItem,
    tpc_matmul_cycles,
)
from repro.hw.config import DMAConfig, HBMConfig, MMEConfig, TPCClusterConfig
from repro.hw.costmodel import (
    EAGER_DISPATCH_OVERHEAD_US,
    DMAModel,
    MMEModel,
    TPCModel,
)
from repro.util.errors import ConfigError
from repro.util.units import tflops

# Paper Table 2: size -> (F_MME, F_TPC) achieved TFLOPS, batch 64.
PAPER_TABLE2 = {
    128: (2.35, 1.86),
    256: (11.67, 2.05),
    512: (14.37, 2.13),
    1024: (14.56, 2.18),
    2048: (14.59, 2.19),
}


@pytest.fixture(scope="module")
def mme():
    return MMEModel(MMEConfig(), HBMConfig())


@pytest.fixture(scope="module")
def tpc():
    return TPCModel(TPCClusterConfig(), HBMConfig())


class TestMatmulDims:
    def test_flops(self):
        assert MatmulDims(2, 3, 4, 5).flops == 2 * 2 * 3 * 4 * 5

    @given(
        st.integers(1, 64), st.integers(1, 512),
        st.integers(1, 512), st.integers(1, 512),
    )
    def test_flops_positive(self, b, m, n, k):
        assert MatmulDims(b, m, n, k).flops > 0


def eager_mme_time_us(mme, dims):
    """Duration of one eagerly dispatched bmm, as Table 2 measures it."""
    return mme.matmul_time_us(dims) + EAGER_DISPATCH_OVERHEAD_US


class TestMMECalibration:
    @pytest.mark.parametrize("size", [512, 1024, 2048])
    def test_saturated_sizes_within_10pct(self, mme, size):
        dims = MatmulDims(64, size, size, size)
        achieved = tflops(dims.flops, eager_mme_time_us(mme, dims))
        assert achieved == pytest.approx(PAPER_TABLE2[size][0], rel=0.10)

    def test_size_128_in_ramp_band(self, mme):
        dims = MatmulDims(64, 128, 128, 128)
        achieved = tflops(dims.flops, eager_mme_time_us(mme, dims))
        # Paper: 2.35 TFLOPS; calibration target +-20%.
        assert achieved == pytest.approx(2.35, rel=0.20)

    def test_size_256_in_ramp_band(self, mme):
        # The sharpest point of the measured ramp; shape (between the
        # 128 and 512 rates) matters more than the absolute value here.
        dims = MatmulDims(64, 256, 256, 256)
        achieved = tflops(dims.flops, eager_mme_time_us(mme, dims))
        assert achieved == pytest.approx(PAPER_TABLE2[256][0], rel=0.30)

    def test_ramp_is_monotone(self, mme):
        rates = [
            tflops(
                MatmulDims(64, s, s, s).flops,
                eager_mme_time_us(mme, MatmulDims(64, s, s, s)),
            )
            for s in sorted(PAPER_TABLE2)
        ]
        assert rates == sorted(rates)

    def test_never_exceeds_peak(self, mme):
        dims = MatmulDims(64, 8192, 8192, 8192)
        achieved = tflops(dims.flops, mme.matmul_time_us(dims))
        assert achieved < mme.config.peak_tflops

    def test_skinny_k_matmul_degrades_gracefully(self, mme):
        # Attention's QK^T has K = head_dim = 64: the MME should still be
        # fast (> 10 TFLOPS), unlike a naive "square size" calibration.
        dims = MatmulDims(768, 2048, 2048, 64)
        achieved = tflops(dims.flops, mme.matmul_time_us(dims))
        assert 10.0 < achieved < mme.config.peak_tflops

    def test_small_output_tile_spatial_penalty(self, mme):
        # Linear attention's phi(K)^T V is 64x64 output on a 128x128
        # array: at most 25% spatial utilization.
        dims = MatmulDims(768, 64, 64, 2048)
        achieved = tflops(dims.flops, mme.matmul_time_us(dims))
        assert achieved <= mme.config.peak_tflops * 0.25 + 1e-6

    def test_rejects_non_matmul(self, mme):
        with pytest.raises(ConfigError, match="matmul"):
            mme.time_us(WorkItem("relu", OpClass.ELEMENTWISE))


class TestTPCMatmulCalibration:
    @pytest.mark.parametrize("size", sorted(PAPER_TABLE2))
    def test_within_10pct_of_paper(self, tpc, size):
        dims = MatmulDims(64, size, size, size)
        achieved = tflops(dims.flops, tpc.matmul_time_us(dims, DType.BF16))
        assert achieved == pytest.approx(PAPER_TABLE2[size][1], rel=0.10)

    @pytest.mark.parametrize("size", sorted(PAPER_TABLE2))
    def test_speedup_shape(self, mme, tpc, size):
        # Paper: MME/TPC speedup ramps from ~1.3 to ~6.7 and saturates.
        dims = MatmulDims(64, size, size, size)
        speedup = tpc.matmul_time_us(dims, DType.BF16) / eager_mme_time_us(
            mme, dims
        )
        paper_speedup = PAPER_TABLE2[size][0] / PAPER_TABLE2[size][1]
        assert speedup == pytest.approx(paper_speedup, rel=0.30)
        if size >= 512:
            assert speedup > 5.5

    def test_cycles_scale_with_work(self):
        cfg = TPCClusterConfig()
        small = tpc_matmul_cycles(cfg, DType.BF16, MatmulDims(1, 128, 128, 128))
        big = tpc_matmul_cycles(cfg, DType.BF16, MatmulDims(1, 256, 256, 256))
        assert big > 4 * small  # cubic growth dominates

    def test_more_cores_fewer_cycles(self):
        dims = MatmulDims(8, 256, 256, 256)
        c8 = tpc_matmul_cycles(TPCClusterConfig(num_cores=8), DType.BF16, dims)
        c4 = tpc_matmul_cycles(TPCClusterConfig(num_cores=4), DType.BF16, dims)
        assert c4 == pytest.approx(2 * c8)


class TestTPCOpClasses:
    def test_elementwise_is_memory_bound_at_scale(self, tpc):
        nbytes = 1 << 30
        item = WorkItem(
            "add", OpClass.ELEMENTWISE, flops=nbytes // 2,
            bytes_read=nbytes, bytes_written=nbytes // 2,
        )
        mem_us = (item.bytes_total / tpc.hbm.effective_bandwidth) * 1e6
        assert tpc.time_us(item) == pytest.approx(
            mem_us + tpc.config.launch_overhead_us
        )

    def test_reduction_much_slower_than_elementwise(self, tpc):
        # Same FLOPs, compute-bound regime: reductions are SIMD-hostile
        # (paper section 3.3), so the reduction must take far longer.
        flops = 1e10
        ew = WorkItem("mul", OpClass.ELEMENTWISE, flops=flops)
        red = WorkItem("sum", OpClass.REDUCTION, flops=flops)
        assert tpc.time_us(red) > 5 * tpc.time_us(ew)

    def test_special_function_cost_uses_cycle_table(self, tpc):
        n = 1 << 20
        exp_item = WorkItem("exp", OpClass.SPECIAL, elements=n, special_fn="exp")
        sqrt_item = WorkItem("sqrt", OpClass.SPECIAL, elements=n, special_fn="sqrt")
        # exp costs 15 cycles/element vs sqrt 8 -> exp is slower.
        assert tpc.time_us(exp_item) > tpc.time_us(sqrt_item)

    def test_fixed_time_added(self, tpc):
        base = WorkItem("glu", OpClass.ELEMENTWISE, flops=1e6)
        penalized = WorkItem(
            "glu", OpClass.ELEMENTWISE, flops=1e6, fixed_time_us=2500.0
        )
        assert tpc.time_us(penalized) == pytest.approx(
            tpc.time_us(base) + 2500.0
        )

    def test_data_move_allowed_on_tpc(self, tpc):
        item = WorkItem("copy", OpClass.DATA_MOVE, bytes_read=1 << 20,
                        bytes_written=1 << 20)
        assert tpc.time_us(item) > 0

    def test_host_class_rejected(self, tpc):
        with pytest.raises(ConfigError):
            tpc.time_us(WorkItem("h", OpClass.HOST))


class TestDMA:
    def test_latency_plus_bandwidth(self):
        model = DMAModel(DMAConfig(bandwidth_bytes_per_s=1e9, latency_us=5.0))
        # 1e9 bytes at 1e9 B/s = 1 s = 1e6 us, plus 5 us latency.
        assert model.transfer_time_us(10**9) == pytest.approx(1e6 + 5.0)

    def test_zero_bytes_costs_latency(self):
        model = DMAModel(DMAConfig(latency_us=3.0))
        assert model.transfer_time_us(0) == pytest.approx(3.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            DMAModel(DMAConfig()).transfer_time_us(-1)

    def test_rejects_compute_items(self):
        with pytest.raises(ConfigError):
            DMAModel(DMAConfig()).time_us(WorkItem("mm", OpClass.MATMUL))


class TestCostModelFacade:
    def test_dispatch(self):
        cm = CostModel(GaudiConfig())
        dims = MatmulDims(4, 512, 512, 512)
        mm = WorkItem("mm", OpClass.MATMUL, flops=dims.flops, matmul=dims)
        assert cm.time_us(EngineKind.MME, mm) > 0
        assert cm.time_us(EngineKind.TPC, mm) > cm.time_us(EngineKind.MME, mm)
        mv = WorkItem("cp", OpClass.DATA_MOVE, bytes_read=1024)
        assert cm.time_us(EngineKind.DMA, mv) > 0

    def test_host_items_use_fixed_time(self):
        cm = CostModel(GaudiConfig())
        item = WorkItem("compile", OpClass.HOST, fixed_time_us=42.0)
        assert cm.time_us(EngineKind.HOST, item) == 42.0

    @given(
        st.integers(1, 16), st.integers(1, 1024),
        st.integers(1, 1024), st.integers(1, 1024),
    )
    def test_mme_time_positive_and_finite(self, b, m, n, k):
        cm = CostModel(GaudiConfig())
        dims = MatmulDims(b, m, n, k)
        item = WorkItem("mm", OpClass.MATMUL, flops=dims.flops, matmul=dims)
        t = cm.time_us(EngineKind.MME, item)
        assert 0 < t < 1e12
