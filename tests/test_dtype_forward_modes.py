"""Tests: dtype-aware MME rates and forward-vs-training profiling."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.core import record_forward_step, record_training_step
from repro.hw.config import HBMConfig, MMEConfig
from repro.hw.costmodel import MatmulDims, MMEModel
from repro.hw.dtypes import DType
from repro.synapse import SynapseProfiler
from repro.hw.costmodel import EngineKind


class TestDtypeAwareMME:
    @pytest.fixture(scope="class")
    def mme(self):
        return MMEModel(MMEConfig(), HBMConfig())

    def test_bf16_is_the_calibration_dtype(self, mme):
        assert MMEModel.dtype_rate_factor(DType.BF16) == 1.0

    def test_fp32_halves_the_rate(self, mme):
        dims = MatmulDims(8, 1024, 1024, 1024)
        bf16 = mme.achieved_tflops(dims, DType.BF16)
        fp32 = mme.achieved_tflops(dims, DType.FP32)
        assert fp32 == pytest.approx(bf16 / 2)

    def test_int8_doubles_capped(self, mme):
        assert MMEModel.dtype_rate_factor(DType.INT8) == 2.0
        assert MMEModel.dtype_rate_factor(DType.FP16) == 1.0

    def test_fp32_matmul_time_doubles(self, mme):
        dims = MatmulDims(8, 1024, 1024, 1024)
        t16 = mme.matmul_time_us(dims, DType.BF16)
        t32 = mme.matmul_time_us(dims, DType.FP32)
        # launch overhead is tiny at this size
        assert t32 == pytest.approx(2 * t16, rel=0.01)

    def test_fp32_layer_profile_roughly_doubles(self):
        def total(dtype):
            with ht.record(mode="symbolic") as rec:
                a = ht.input_tensor((512, 512), dtype=dtype, name="a")
                b = ht.input_tensor((512, 512), dtype=dtype, name="b")
                F.matmul(F.softmax(F.matmul(a, b)), b)
            return SynapseProfiler().profile(rec.graph).total_time_us

        ratio = total(DType.FP32) / total(DType.BF16)
        # matmuls 2x (rate), softmax ~2x (lanes + traffic)
        assert 1.6 < ratio < 2.4


class TestForwardVsTraining:
    @pytest.fixture(scope="class")
    def profiles(self):
        fwd = SynapseProfiler().profile(record_forward_step("gpt").graph)
        train = SynapseProfiler().profile(record_training_step("gpt").graph)
        return fwd, train

    def test_training_is_roughly_3x_forward(self, profiles):
        fwd, train = profiles
        ratio = train.total_time_us / fwd.total_time_us
        # fwd + ~2x bwd matmuls + loss + optimizer
        assert 2.3 < ratio < 4.5

    def test_forward_has_no_backward_scope(self, profiles):
        fwd, _ = profiles
        assert not any("bwd" in ev.scope for ev in fwd.timeline.events)

    def test_training_has_backward_and_optimizer(self, profiles):
        _, train = profiles
        scopes = {ev.scope for ev in train.timeline.events}
        assert any("bwd" in s for s in scopes)
        assert any("optimizer" in s for s in scopes)

    def test_forward_peak_memory_lower(self, profiles):
        fwd, train = profiles
        # no loss one-hot input and no stored-for-backward pressure at
        # the end of the graph
        assert fwd.peak_hbm_bytes < train.peak_hbm_bytes

    def test_forward_softmax_still_on_tpc(self, profiles):
        fwd, _ = profiles
        assert fwd.timeline.src_share("softmax", EngineKind.TPC) > 0.0

    def test_unknown_model_rejected(self):
        from repro.util.errors import DataError

        with pytest.raises(DataError, match="unknown model 'mamba'"):
            record_forward_step("mamba")
