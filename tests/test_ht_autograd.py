"""Autograd tests: numeric gradient checks per op + driver behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.util.errors import AutogradError

EPS = 1e-4


def analytic_grad(fn, x0: np.ndarray) -> tuple[float, np.ndarray]:
    """Run fn under a concrete recording; return (loss, grad)."""
    with ht.record(mode="concrete"):
        x = ht.tensor(x0, requires_grad=True)
        loss = fn(x)
        loss.backward()
        return loss.item(), (
            x.grad.numpy().copy() if x.grad is not None else np.zeros_like(x0)
        )


def numeric_grad(fn, x0: np.ndarray) -> np.ndarray:
    """Central finite differences of the same scalar function."""

    def value(arr):
        with ht.record(mode="concrete"):
            return fn(ht.tensor(arr, requires_grad=True)).item()

    out = np.zeros_like(x0)
    for idx in np.ndindex(*x0.shape):
        xp, xm = x0.copy(), x0.copy()
        xp[idx] += EPS
        xm[idx] -= EPS
        out[idx] = (value(xp) - value(xm)) / (2 * EPS)
    return out


def gradcheck(fn, x0: np.ndarray, atol: float = 2e-3) -> None:
    _, g = analytic_grad(fn, x0)
    n = numeric_grad(fn, x0)
    np.testing.assert_allclose(g, n, atol=atol, rtol=1e-2)


RNG = np.random.default_rng(1234)
X23 = RNG.normal(size=(2, 3))
XPOS = np.abs(RNG.normal(size=(2, 3))) + 0.5


class TestGradcheckUnary:
    @pytest.mark.parametrize(
        "name,fn,x0",
        [
            ("exp", lambda x: F.mean(F.exp(x)), X23),
            ("log", lambda x: F.mean(F.log(x)), XPOS),
            ("sqrt", lambda x: F.mean(F.sqrt(x)), XPOS),
            ("rsqrt", lambda x: F.mean(F.rsqrt(x)), XPOS),
            ("sigmoid", lambda x: F.mean(F.sigmoid(x)), X23),
            ("tanh", lambda x: F.mean(F.tanh(x)), X23),
            ("square", lambda x: F.mean(F.square(x)), X23),
            ("neg", lambda x: F.mean(F.neg(x)), X23),
            ("abs", lambda x: F.mean(F.abs(x)), X23 + 0.3),
            ("relu", lambda x: F.mean(F.relu(x)), X23 + 0.05),
            ("leaky", lambda x: F.mean(F.leaky_relu(x, 0.2)), X23 + 0.05),
            ("elu", lambda x: F.mean(F.elu(x)), X23 + 0.05),
            ("gelu", lambda x: F.mean(F.gelu(x)), X23),
            ("smul", lambda x: F.mean(F.mul_scalar(x, -2.5)), X23),
            ("sadd", lambda x: F.mean(F.add_scalar(x, 1.5)), X23),
            ("spow", lambda x: F.mean(F.pow_scalar(x, 3.0)), XPOS),
            ("glu", lambda x: F.mean(F.glu(x)), RNG.normal(size=(3, 4))),
        ],
    )
    def test_gradcheck(self, name, fn, x0):
        gradcheck(fn, x0)


class TestGradcheckBinaryAndMatmul:
    def test_mul_both_sides(self):
        b0 = RNG.normal(size=(2, 3))

        def fn(x):
            b = ht.tensor(b0)
            return F.mean(F.mul(x, b))

        gradcheck(fn, X23)

    def test_div(self):
        b0 = np.abs(RNG.normal(size=(2, 3))) + 1.0
        gradcheck(lambda x: F.mean(F.div(x, ht.tensor(b0))), X23)
        gradcheck(lambda x: F.mean(F.div(ht.tensor(b0), x)), XPOS)

    def test_maximum(self):
        b0 = RNG.normal(size=(2, 3))
        gradcheck(lambda x: F.mean(F.maximum(x, ht.tensor(b0))), X23 + 0.7)

    def test_add_with_broadcast(self):
        bias = RNG.normal(size=(3,))
        gradcheck(lambda x: F.mean(F.add(x, ht.tensor(bias))), X23)
        # gradient flows to the broadcast side too
        def fn_bias(b):
            x = ht.tensor(X23)
            return F.mean(F.add(x, b))

        gradcheck(fn_bias, bias.copy())

    def test_matmul_plain(self):
        b0 = RNG.normal(size=(3, 4))
        gradcheck(lambda x: F.mean(F.matmul(x, ht.tensor(b0))), X23)

    def test_matmul_batched_broadcast_weight(self):
        # x(B, N, D) @ W(D, F): the Linear pattern with batch broadcast.
        w0 = RNG.normal(size=(3, 2))
        x0 = RNG.normal(size=(4, 5, 3))

        def fn(w):
            x = ht.tensor(x0)
            return F.mean(F.matmul(x, w))

        gradcheck(fn, w0)

    def test_matmul_transpose_flags(self):
        b0 = RNG.normal(size=(4, 3))
        gradcheck(
            lambda x: F.mean(F.matmul(x, ht.tensor(b0), transpose_b=True)),
            X23,
        )
        gradcheck(
            lambda x: F.mean(F.matmul(x, ht.tensor(X23), transpose_a=True)),
            RNG.normal(size=(2, 5)),
        )


class TestGradcheckReductionsComposites:
    def test_sum_axis(self):
        gradcheck(lambda x: F.mean(F.square(F.sum(x, axis=-1))), X23)

    def test_sum_all(self):
        gradcheck(lambda x: F.square(F.sum(x)), X23)

    def test_mean_keepdims(self):
        gradcheck(
            lambda x: F.sum(F.square(F.sub(x, F.mean(x, axis=-1, keepdims=True)))),
            X23,
        )

    def test_max_axis(self):
        # offset to avoid ties (non-differentiable points)
        x0 = X23 + np.arange(6).reshape(2, 3) * 0.37
        gradcheck(lambda x: F.sum(F.square(F.max(x, axis=-1))), x0)

    def test_softmax(self):
        w = RNG.normal(size=(2, 3))
        gradcheck(
            lambda x: F.sum(F.mul(F.softmax(x, axis=-1), ht.tensor(w))), X23
        )

    def test_log_softmax(self):
        w = RNG.normal(size=(2, 3))
        gradcheck(
            lambda x: F.sum(F.mul(F.log_softmax(x, axis=-1), ht.tensor(w))),
            X23,
        )

    def test_transpose_reshape_slice(self):
        def fn(x):
            t = F.transpose(x, (1, 0))
            r = F.reshape(t, (6,))
            s = F.slice_last(r, 1, 5)
            return F.mean(F.square(s))

        gradcheck(fn, X23)

    def test_concat(self):
        b0 = RNG.normal(size=(2, 2))

        def fn(x):
            return F.mean(F.square(F.concat_last(x, ht.tensor(b0))))

        gradcheck(fn, X23)

    def test_gather_rows_grad(self):
        idx = np.array([0, 2, 0])

        def fn(table):
            return F.mean(F.square(F.gather_rows(table, ht.tensor(idx))))

        gradcheck(fn, RNG.normal(size=(4, 3)))

    def test_broadcast_to(self):
        def fn(x):
            return F.sum(F.square(F.broadcast_to(x, (4, 2, 3))))

        gradcheck(fn, X23)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_chain_rule_random_expressions(self, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.normal(size=(2, 2))
        gradcheck(
            lambda x: F.mean(
                F.mul(F.sigmoid(F.mul_scalar(x, 1.5)), F.exp(F.neg(F.square(x))))
            ),
            x0,
        )


class TestBackwardDriver:
    def test_requires_scalar(self):
        with ht.record():
            x = ht.randn(2, 2, requires_grad=True)
            with pytest.raises(AutogradError, match="scalar"):
                F.exp(x).backward()

    def test_requires_grad(self):
        with ht.record():
            x = ht.randn(2, 2)  # requires_grad False
            with pytest.raises(AutogradError, match="nothing to do"):
                F.mean(x).backward()

    def test_grad_accumulates_across_uses(self):
        with ht.record():
            x = ht.tensor(np.array(2.0), requires_grad=True)
            y = F.add(F.mul(x, x), x)  # x^2 + x -> dy/dx = 2x + 1 = 5
            y.backward()
            assert x.grad.item() == pytest.approx(5.0)

    def test_no_grad_for_untracked_inputs(self):
        with ht.record():
            x = ht.randn(2, 2, requires_grad=True)
            c = ht.randn(2, 2)  # constant
            F.mean(F.mul(x, c)).backward()
            assert c.grad is None
            assert x.grad is not None

    def test_backward_ops_are_recorded_with_bwd_scope(self):
        with ht.record() as rec:
            x = ht.randn(2, 2, requires_grad=True)
            F.mean(F.exp(x)).backward()
        bwd_nodes = [n for n in rec.graph.nodes if "bwd" in n.scope]
        assert bwd_nodes
        assert any(n.src == "exp_bwd" for n in rec.graph.nodes)

    def test_symbolic_backward_records_graph(self):
        with ht.record(mode="symbolic") as rec:
            x = ht.input_tensor((8, 8), requires_grad=True)
            F.mean(F.square(x)).backward()
            assert x.grad is not None
            assert x.grad.shape == (8, 8)
            assert x.grad.data is None
        assert len(rec.graph) > 3

    def test_parameter_grad_set(self):
        p = ht.Parameter(np.ones((2, 2)), name="w")
        with ht.record():
            t = p.as_tensor()
            F.sum(F.square(t)).backward()
        assert p.grad is not None
        np.testing.assert_allclose(p.grad.numpy(), 2 * np.ones((2, 2)))
