"""Edge-path coverage for the ht frontend: recorder, init, helpers."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.ht import init as I
from repro.hw.dtypes import DType
from repro.util.errors import GraphError, ShapeError


class TestRecorderEdges:
    def test_scope_outside_recording_raises(self):
        with pytest.raises(GraphError, match="no active recording"):
            with ht.scope("x"):
                pass

    def test_has_active(self):
        assert not ht.has_active()
        with ht.record():
            assert ht.has_active()
        assert not ht.has_active()

    def test_current_outside_raises(self):
        with pytest.raises(GraphError):
            ht.current()

    def test_recorder_survives_exception(self):
        with pytest.raises(RuntimeError):
            with ht.record():
                raise RuntimeError("boom")
        assert not ht.has_active()

    def test_src_override_round_trips(self):
        with ht.record() as rec:
            assert rec.src_override is None
            x = ht.tensor([1.0], requires_grad=True)
            F.mean(F.exp(x)).backward()
            assert rec.src_override is None  # restored after backward


class TestInit:
    def test_zeros_ones(self):
        z = I.zeros((3, 3), name="z")
        o = I.ones((3,), name="o")
        np.testing.assert_array_equal(z.data, 0.0)
        np.testing.assert_array_equal(o.data, 1.0)

    def test_normal_std(self):
        rng = np.random.default_rng(0)
        p = I.normal((2000,), std=0.5, rng=rng)
        assert abs(p.data.std() - 0.5) < 0.05
        assert abs(p.data.mean()) < 0.05

    def test_xavier_bounds(self):
        rng = np.random.default_rng(1)
        p = I.xavier_uniform((100, 50), rng=rng)
        bound = np.sqrt(6.0 / 150)
        assert p.data.max() <= bound + 1e-6
        assert p.data.min() >= -bound - 1e-6

    @pytest.mark.parametrize("factory", [I.zeros, I.ones, I.normal,
                                         I.xavier_uniform])
    def test_materialize_false(self, factory):
        p = factory((4, 4), materialize=False)
        assert p.data is None
        assert p.shape == (4, 4)

    def test_dtype_plumbs(self):
        p = I.zeros((2,), dtype=DType.FP32)
        assert p.dtype is DType.FP32
        assert p.data.dtype == np.float32


class TestTensorEdges:
    def test_input_tensor_shape_mismatch(self):
        with ht.record():
            with pytest.raises(ShapeError, match="shape"):
                ht.input_tensor((2, 2), data=np.zeros((3, 3)))

    def test_randn_scale_and_seed(self):
        rng = np.random.default_rng(2)
        with ht.record():
            t = ht.randn(1000, rng=rng, scale=3.0)
            assert abs(t.numpy().std() - 3.0) < 0.4

    def test_ensure_tensor_rejects_arrays(self):
        from repro.ht.tensor import ensure_tensor

        with ht.record():
            with pytest.raises(GraphError, match="wrap raw arrays"):
                ensure_tensor(np.zeros(3))

    def test_tensor_kind_recorded(self):
        with ht.record() as rec:
            t = ht.tensor([1.0], kind="const", name="c")
        assert rec.graph.value(t.vid).kind == "const"

    def test_repr_modes(self):
        with ht.record():
            t = ht.tensor([1.0])
            assert "concrete" in repr(t)
        with ht.record(mode="symbolic"):
            s = ht.input_tensor((2,))
            assert "symbolic" in repr(s)

    def test_parameter_repr_and_numel(self):
        p = ht.Parameter(np.zeros((3, 4)), name="w")
        assert "w" in repr(p)
        assert p.numel == 12


class TestModuleEdges:
    def test_set_name_changes_scope(self):
        lin = ht.Linear(2, 2).set_name("projector")
        with ht.record() as rec:
            lin(ht.randn(1, 2))
        assert any("projector" in n.scope for n in rec.graph.nodes)

    def test_module_outside_recording_fails_fast(self):
        lin = ht.Linear(2, 2)
        # without an active recording there are no Tensors to pass;
        # any call fails before touching device state
        with pytest.raises((GraphError, AttributeError)):
            lin(None)

    def test_named_parameters_over_plain_lists(self):
        class Holder(ht.Module):
            def __init__(self):
                super().__init__()
                self.items = [ht.Parameter(np.zeros((2,)), name="a"),
                              ht.Linear(2, 2, name="fc")]

            def forward(self, x):
                return x

        names = [n for n, _ in Holder().named_parameters()]
        assert "items.0" in names
        assert "items.1.weight" in names

    def test_adamlike_zero_grad(self):
        model = ht.Linear(2, 2)
        opt = ht.AdamLike(model.parameters())
        with ht.record():
            loss = F.mean(F.square(model(ht.randn(2, 2))))
            loss.backward()
        assert model.weight.grad is not None
        opt.zero_grad()
        assert model.weight.grad is None
