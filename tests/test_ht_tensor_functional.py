"""Unit tests for the ht frontend: tensors, recording, functional ops."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.util.errors import GraphError, ShapeError


class TestRecording:
    def test_requires_active_recorder(self):
        with pytest.raises(GraphError, match="no active recording"):
            ht.tensor([1.0, 2.0])

    def test_record_yields_graph(self):
        with ht.record("g") as rec:
            x = ht.tensor([1.0, 2.0])
            F.exp(x)
        assert rec.graph.name == "g"
        assert len(rec.graph) == 1
        assert rec.graph.nodes[0].op == "exp"

    def test_nested_records_are_independent(self):
        with ht.record("outer") as outer:
            ht.tensor([1.0])
            with ht.record("inner") as inner:
                x = ht.tensor([2.0])
                F.exp(x)
            assert len(inner.graph) == 1
            assert len(outer.graph) == 0

    def test_scope_tagging(self):
        with ht.record() as rec:
            x = ht.tensor([1.0])
            with ht.scope("attn"):
                with ht.scope("softmax"):
                    F.exp(x)
        assert rec.graph.nodes[0].scope == "attn.softmax"

    def test_symbolic_mode_has_no_data(self):
        with ht.record(mode="symbolic"):
            x = ht.input_tensor((4, 4))
            y = F.relu(x)
            assert y.data is None
            with pytest.raises(GraphError, match="symbolic"):
                y.numpy()

    def test_concrete_input_requires_data(self):
        with ht.record(mode="concrete"):
            with pytest.raises(GraphError, match="needs data"):
                ht.input_tensor((2, 2))

    def test_bad_mode(self):
        with pytest.raises(GraphError, match="mode"):
            with ht.record(mode="quantum"):
                pass


class TestTensorBasics:
    def test_shape_dtype_numel(self):
        with ht.record():
            x = ht.tensor(np.zeros((2, 3)))
            assert x.shape == (2, 3)
            assert x.ndim == 2
            assert x.numel == 6

    def test_item(self):
        with ht.record():
            x = ht.tensor(3.5)
            assert x.item() == pytest.approx(3.5)
            y = ht.tensor([1.0, 2.0])
            with pytest.raises(ShapeError):
                y.item()

    def test_operators_match_numpy(self):
        rng = np.random.default_rng(0)
        a_np = rng.normal(size=(3, 4))
        b_np = rng.normal(size=(3, 4))
        with ht.record():
            a, b = ht.tensor(a_np), ht.tensor(b_np)
            tol = dict(rtol=1e-5, atol=1e-6)  # fp32 carrier precision
            np.testing.assert_allclose((a + b).numpy(), a_np + b_np, **tol)
            np.testing.assert_allclose((a - b).numpy(), a_np - b_np, **tol)
            np.testing.assert_allclose((a * b).numpy(), a_np * b_np, **tol)
            np.testing.assert_allclose((a / b).numpy(), a_np / b_np, **tol)
            np.testing.assert_allclose((a * 2.0).numpy(), a_np * 2, **tol)
            np.testing.assert_allclose((3.0 + a).numpy(), 3 + a_np, **tol)
            np.testing.assert_allclose((1.0 - a).numpy(), 1 - a_np, **tol)
            np.testing.assert_allclose((-a).numpy(), -a_np, **tol)
            np.testing.assert_allclose((a ** 2).numpy(), a_np ** 2, **tol)
            np.testing.assert_allclose((a / 2).numpy(), a_np / 2, **tol)

    def test_matmul_operator(self):
        rng = np.random.default_rng(1)
        a_np = rng.normal(size=(2, 3, 4))
        b_np = rng.normal(size=(2, 4, 5))
        with ht.record():
            out = ht.tensor(a_np) @ ht.tensor(b_np)
            np.testing.assert_allclose(out.numpy(), a_np @ b_np, rtol=1e-5)

    def test_transpose_reshape(self):
        with ht.record():
            x = ht.tensor(np.arange(24.0).reshape(2, 3, 4))
            t = x.transpose(-2, -1)
            assert t.shape == (2, 4, 3)
            r = x.reshape(6, 4)
            assert r.shape == (6, 4)
            r2 = x.reshape(-1, 4)
            assert r2.shape == (6, 4)

    def test_reductions(self):
        x_np = np.arange(12.0).reshape(3, 4)
        with ht.record():
            x = ht.tensor(x_np)
            np.testing.assert_allclose(x.sum().numpy(), x_np.sum())
            np.testing.assert_allclose(
                x.mean(axis=-1).numpy(), x_np.mean(-1), rtol=1e-6
            )
            np.testing.assert_allclose(
                x.max(axis=0, keepdims=True).numpy(), x_np.max(0, keepdims=True)
            )


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        with ht.record():
            x = ht.randn(4, 7)
            s = F.softmax(x)
            np.testing.assert_allclose(s.numpy().sum(-1), 1.0, rtol=1e-5)

    def test_activations_match_numpy(self):
        x_np = np.linspace(-3, 3, 13)
        with ht.record():
            x = ht.tensor(x_np)
            np.testing.assert_allclose(
                F.relu(x).numpy(), np.maximum(x_np, 0), rtol=1e-6
            )
            np.testing.assert_allclose(
                F.elu(x).numpy(),
                np.where(x_np > 0, x_np, np.expm1(x_np)), rtol=1e-5,
            )
            np.testing.assert_allclose(
                F.leaky_relu(x, 0.1).numpy(),
                np.where(x_np >= 0, x_np, 0.1 * x_np), rtol=1e-6,
            )
            np.testing.assert_allclose(F.tanh(x).numpy(), np.tanh(x_np), rtol=1e-5)

    def test_gelu_close_to_erf_form(self):
        from math import erf, sqrt

        x_np = np.linspace(-3, 3, 25)
        ref = np.array([0.5 * v * (1 + erf(v / sqrt(2))) for v in x_np])
        with ht.record():
            out = F.gelu(ht.tensor(x_np)).numpy()
        np.testing.assert_allclose(out, ref, atol=2e-3)

    def test_glu(self):
        with ht.record():
            x = ht.tensor([[2.0, 0.0]])
            np.testing.assert_allclose(F.glu(x).numpy(), [[1.0]], rtol=1e-6)

    def test_slice_concat_round_trip(self):
        x_np = np.arange(12.0).reshape(3, 4)
        with ht.record():
            x = ht.tensor(x_np)
            a = F.slice_last(x, 0, 2)
            b = F.slice_last(x, 2, 4)
            back = F.concat_last(a, b)
            np.testing.assert_allclose(back.numpy(), x_np)

    def test_gather_rows(self):
        with ht.record():
            table = ht.tensor(np.arange(12.0).reshape(4, 3))
            idx = ht.tensor(np.array([0, 3]))
            out = F.gather_rows(table, idx)
            np.testing.assert_allclose(out.numpy(), [[0, 1, 2], [9, 10, 11]])

    def test_matmul_transpose_flags(self):
        rng = np.random.default_rng(2)
        a_np = rng.normal(size=(4, 3))
        b_np = rng.normal(size=(5, 3))
        with ht.record():
            out = F.matmul(ht.tensor(a_np), ht.tensor(b_np), transpose_b=True)
            np.testing.assert_allclose(out.numpy(), a_np @ b_np.T, rtol=1e-5)
            out2 = F.matmul(ht.tensor(a_np), ht.tensor(a_np), transpose_a=True)
            np.testing.assert_allclose(out2.numpy(), a_np.T @ a_np, rtol=1e-5)

    def test_cross_entropy_matches_reference(self):
        rng = np.random.default_rng(3)
        logits_np = rng.normal(size=(5, 7))
        targets = rng.integers(0, 7, size=5)
        onehot_np = np.eye(7)[targets]
        # reference: -mean(log softmax picked)
        shifted = logits_np - logits_np.max(-1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(-1, keepdims=True))
        expected = -logp[np.arange(5), targets].mean()
        with ht.record():
            loss = F.cross_entropy_with_logits(
                ht.tensor(logits_np), ht.tensor(onehot_np)
            )
            assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_shape_errors_propagate(self):
        with ht.record():
            a = ht.tensor(np.zeros((2, 3)))
            b = ht.tensor(np.zeros((4, 5)))
            with pytest.raises(ShapeError):
                F.matmul(a, b)

    def test_raw_arrays_rejected(self):
        with ht.record():
            with pytest.raises(GraphError, match="wrap raw arrays"):
                F.exp(np.zeros(3))


class TestParameters:
    def test_parameter_binds_once_per_graph(self):
        p = ht.Parameter(np.zeros((2, 2)), name="w")
        with ht.record() as rec:
            t1 = p.as_tensor()
            t2 = p.as_tensor()
            assert t1.vid == t2.vid
        with ht.record() as rec2:
            t3 = p.as_tensor()
        # fresh graph, fresh registration
        assert rec2.graph.value(t3.vid).kind == "param"

    def test_parameter_needs_shape_or_data(self):
        with pytest.raises(ShapeError):
            ht.Parameter()

    def test_symbolic_parameter_in_concrete_recording_fails(self):
        p = ht.Parameter(shape=(2, 2), name="w")
        with ht.record(mode="concrete"):
            with pytest.raises(GraphError, match="no data"):
                p.as_tensor()

    def test_symbolic_parameter_in_symbolic_recording_ok(self):
        p = ht.Parameter(shape=(2, 2), name="w")
        with ht.record(mode="symbolic"):
            t = p.as_tensor()
            assert t.shape == (2, 2)
            assert t.requires_grad
