"""Tests for the ht module system and optimizers."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.util.errors import ConfigError, ShapeError


class TestLinear:
    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(0)
        lin = ht.Linear(4, 3, rng=rng)
        x_np = rng.normal(size=(5, 4))
        with ht.record():
            out = lin(ht.tensor(x_np))
            expected = x_np @ lin.weight.data + lin.bias.data
            np.testing.assert_allclose(out.numpy(), expected, rtol=1e-5)

    def test_no_bias(self):
        lin = ht.Linear(4, 3, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_wrong_input_dim(self):
        lin = ht.Linear(4, 3)
        with ht.record():
            with pytest.raises(ShapeError, match="expected last dim 4"):
                lin(ht.randn(5, 7))

    def test_symbolic_linear(self):
        lin = ht.Linear(64, 32, materialize=False)
        with ht.record(mode="symbolic"):
            out = lin(ht.input_tensor((8, 64)))
            assert out.shape == (8, 32)


class TestEmbeddingLayerNorm:
    def test_embedding_lookup(self):
        rng = np.random.default_rng(1)
        emb = ht.Embedding(10, 4, rng=rng)
        with ht.record():
            out = emb(ht.tensor(np.array([1, 5])))
            np.testing.assert_allclose(out.numpy(), emb.weight.data[[1, 5]])

    def test_layernorm_normalizes(self):
        rng = np.random.default_rng(2)
        ln = ht.LayerNorm(8)
        with ht.record():
            out = ln(ht.tensor(rng.normal(2.0, 3.0, size=(4, 8)))).numpy()
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(-1), 1.0, atol=1e-2)

    def test_layernorm_wrong_dim(self):
        ln = ht.LayerNorm(8)
        with ht.record():
            with pytest.raises(ShapeError):
                ln(ht.randn(4, 7))

    def test_layernorm_is_composed_of_primitives(self):
        ln = ht.LayerNorm(8, materialize=False)
        with ht.record(mode="symbolic") as rec:
            ln(ht.input_tensor((4, 8)))
        ops = {n.op for n in rec.graph.nodes}
        assert {"mean", "sub", "square", "rsqrt", "mul"} <= ops


class TestModuleTree:
    def make_mlp(self):
        return ht.Sequential(
            ht.Linear(8, 16, name="fc1"),
            ht.Dropout(0.1),
            ht.Linear(16, 4, name="fc2"),
            name="mlp",
        )

    def test_named_parameters(self):
        mlp = self.make_mlp()
        names = [n for n, _ in mlp.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        mlp = self.make_mlp()
        assert mlp.num_parameters() == 8 * 16 + 16 + 16 * 4 + 4
        assert mlp.parameter_bytes() == mlp.num_parameters() * 2  # bf16

    def test_scopes_in_graph(self):
        mlp = self.make_mlp()
        with ht.record() as rec:
            mlp(ht.randn(2, 8))
        scopes = {n.scope for n in rec.graph.nodes}
        assert any("mlp.fc1" in s for s in scopes)

    def test_dropout_is_identity(self):
        d = ht.Dropout(0.5)
        with ht.record():
            x = ht.randn(3, 3)
            assert d(x) is x
        with pytest.raises(ConfigError):
            ht.Dropout(1.0)

    def test_sequential_indexing(self):
        mlp = self.make_mlp()
        assert len(mlp) == 3
        assert isinstance(mlp[0], ht.Linear)


class TestSGD:
    def test_training_reduces_loss(self):
        """End-to-end sanity: a tiny regression problem must converge."""
        rng = np.random.default_rng(3)
        w_true = rng.normal(size=(4, 1))
        x_np = rng.normal(size=(64, 4))
        y_np = x_np @ w_true
        model = ht.Linear(4, 1, rng=rng)
        opt = ht.SGD(model.parameters(), lr=0.1)
        losses = []
        for _ in range(60):
            with ht.record():
                pred = model(ht.tensor(x_np))
                loss = F.mean(F.square(F.sub(pred, ht.tensor(y_np))))
                loss.backward()
                opt.step()
                opt.zero_grad()
                losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.01

    def test_momentum_converges(self):
        rng = np.random.default_rng(4)
        x_np = rng.normal(size=(32, 3))
        y_np = x_np @ rng.normal(size=(3, 1))
        model = ht.Linear(3, 1, rng=rng)
        opt = ht.SGD(model.parameters(), lr=0.05, momentum=0.9)
        first = last = None
        for _ in range(50):
            with ht.record():
                loss = F.mean(F.square(F.sub(model(ht.tensor(x_np)),
                                             ht.tensor(y_np))))
                loss.backward()
                opt.step()
                opt.zero_grad()
                first = first if first is not None else loss.item()
                last = loss.item()
        assert last < first * 0.05

    def test_step_skips_gradless_params(self):
        model = ht.Linear(2, 2)
        opt = ht.SGD(model.parameters(), lr=0.1)
        with ht.record():
            assert opt.step() == 0

    def test_step_emits_ops(self):
        model = ht.Linear(2, 2)
        opt = ht.SGD(model.parameters(), lr=0.1)
        with ht.record() as rec:
            loss = F.mean(F.square(model(ht.randn(3, 2))))
            loss.backward()
            n_before = len(rec.graph)
            updated = opt.step()
        assert updated == 2
        assert len(rec.graph) > n_before
        opt_nodes = [n for n in rec.graph.nodes if "optimizer" in n.scope]
        assert opt_nodes

    def test_invalid_hyperparams(self):
        model = ht.Linear(2, 2)
        with pytest.raises(ConfigError):
            ht.SGD(model.parameters(), lr=0.0)
        with pytest.raises(ConfigError):
            ht.SGD(model.parameters(), lr=0.1, momentum=1.0)
        with pytest.raises(ConfigError):
            ht.SGD([], lr=0.1)


class TestAdamLike:
    def test_converges(self):
        rng = np.random.default_rng(5)
        x_np = rng.normal(size=(32, 3))
        y_np = x_np @ rng.normal(size=(3, 1))
        model = ht.Linear(3, 1, rng=rng)
        opt = ht.AdamLike(model.parameters(), lr=0.05)
        first = last = None
        for _ in range(80):
            with ht.record():
                loss = F.mean(F.square(F.sub(model(ht.tensor(x_np)),
                                             ht.tensor(y_np))))
                loss.backward()
                opt.step()
                opt.zero_grad()
                first = first if first is not None else loss.item()
                last = loss.item()
        assert last < first * 0.2

    def test_emits_more_ops_than_sgd(self):
        model = ht.Linear(4, 4)

        def count_opt_nodes(opt_cls, **kw):
            opt = opt_cls(model.parameters(), lr=0.01, **kw)
            with ht.record() as rec:
                loss = F.mean(F.square(model(ht.randn(2, 4))))
                loss.backward()
                opt.step()
            return sum(1 for n in rec.graph.nodes if "optimizer" in n.scope)

        assert count_opt_nodes(ht.AdamLike) > count_opt_nodes(ht.SGD)
