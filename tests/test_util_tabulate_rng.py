"""Unit tests for repro.util.tabulate and repro.util.rng."""

import numpy as np
import pytest

from repro.util import rng as rng_mod
from repro.util.tabulate import render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        # every row has the same width
        assert len({len(line) for line in lines}) == 1

    def test_floats_two_decimals(self):
        out = render_table(["x"], [[3.14159]])
        assert "3.14" in out and "3.142" not in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_markdown_mode(self):
        out = render_table(["a", "b"], [[1, 2]], markdown=True)
        lines = out.splitlines()
        assert lines[0].startswith("| ")
        assert set(lines[1]) <= {"|", "-"}

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="row 0"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderKv:
    def test_pairs(self):
        out = render_kv([("key", 1), ("longer_key", 2.5)])
        assert "key" in out and "2.50" in out

    def test_empty(self):
        assert render_kv([]) == ""
        assert render_kv([], title="t") == "t"


class TestRng:
    def test_default_seed_reproducible(self):
        a = rng_mod.make_rng().random(5)
        b = rng_mod.make_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed(self):
        a = rng_mod.make_rng(7).random(5)
        b = rng_mod.make_rng(7).random(5)
        c = rng_mod.make_rng(8).random(5)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_derive_is_stable_wrt_parent_consumption(self):
        parent1 = rng_mod.make_rng(3)
        parent2 = rng_mod.make_rng(3)
        parent2.random(100)  # consume from one parent only
        child1 = rng_mod.derive(parent1, "performer", "features")
        child2 = rng_mod.derive(parent2, "performer", "features")
        np.testing.assert_array_equal(child1.random(5), child2.random(5))

    def test_derive_different_tags_differ(self):
        parent = rng_mod.make_rng(3)
        a = rng_mod.derive(parent, "a").random(5)
        b = rng_mod.derive(parent, "b").random(5)
        assert not np.array_equal(a, b)
