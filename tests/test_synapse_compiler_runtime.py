"""Integration tests: lowering -> compiler -> runtime -> trace."""

import pytest

from repro.hw.config import GaudiConfig, HBMConfig
from repro.hw.costmodel import EngineKind
from repro.hw.device import GaudiDevice
from repro.hw.dtypes import DType
from repro.synapse import (
    CompilerOptions,
    Graph,
    GraphCompiler,
    Runtime,
    SynapseProfiler,
    ascii_timeline,
    gap_report,
    lower_graph,
    validate_no_engine_overlap,
)
from repro.synapse.ops import op as op_def
from repro.util.errors import CompileError, DeviceMemoryError
from dataclasses import replace


def emit(g: Graph, op_name, input_vids, attrs=None, scope=""):
    """Append a node, inferring the output shape from the registry."""
    attrs = attrs or {}
    shapes = [g.value(v).shape for v in input_vids]
    out_shape = op_def(op_name).infer_shape(shapes, attrs)
    out = g.add_value(out_shape, g.value(input_vids[0]).dtype)
    g.add_node(op_name, input_vids, out, attrs=attrs, scope=scope)
    return out.vid


def attention_graph(batch=4, seq=256, dim=64) -> Graph:
    """matmul -> scale -> softmax -> matmul, the Fig 4 core pattern."""
    g = Graph("attn")
    q = g.add_value((batch, seq, dim), DType.BF16, name="q", kind="input")
    k = g.add_value((batch, seq, dim), DType.BF16, name="k", kind="input")
    v = g.add_value((batch, seq, dim), DType.BF16, name="v", kind="input")
    s = emit(g, "matmul", [q.vid, k.vid], {"transpose_b": True}, scope="attn")
    s = emit(g, "smul", [s], {"alpha": dim ** -0.5}, scope="attn")
    p = emit(g, "softmax", [s], {"axis": -1}, scope="attn")
    emit(g, "matmul", [p, v.vid], scope="attn")
    return g


class TestLowering:
    def test_softmax_lowered_to_primitives(self):
        g = attention_graph()
        lowered = lower_graph(g)
        ops = [n.op for n in lowered.nodes]
        assert "softmax" not in ops
        for prim in ("max", "sub", "exp", "sum", "div"):
            assert prim in ops
        # provenance preserved for attribution
        exp_nodes = [n for n in lowered.nodes if n.op == "exp"]
        assert all(n.src == "softmax" for n in exp_nodes)

    def test_lowering_preserves_shapes(self):
        g = attention_graph(batch=2, seq=16, dim=8)
        lowered = lower_graph(g)
        lowered.validate()
        final_old = g.value(g.nodes[-1].output)
        final_new = lowered.value(lowered.nodes[-1].output)
        assert final_old.shape == final_new.shape

    def test_log_softmax_lowering(self):
        g = Graph()
        x = g.add_value((4, 10), DType.BF16, kind="input")
        emit(g, "log_softmax", [x.vid], {"axis": -1})
        lowered = lower_graph(g)
        assert "log" in [n.op for n in lowered.nodes]

    def test_composite_without_lowering_rejected(self):
        g = attention_graph()
        compiler = GraphCompiler(options=CompilerOptions(lower_composites=False))
        with pytest.raises(CompileError, match="lowering is disabled"):
            compiler.compile(g)


class TestCompiler:
    def test_engine_assignment(self):
        schedule = GraphCompiler().compile(attention_graph())
        engines = {op.label.split(".")[-1].split("[")[0]: op.engine
                   for op in schedule.ops}
        assert schedule.engine_queue(EngineKind.MME)
        assert schedule.engine_queue(EngineKind.TPC)
        for op in schedule.ops:
            if "matmul" in op.label:
                assert op.engine is EngineKind.MME

    def test_deps_point_backwards(self):
        schedule = GraphCompiler().compile(attention_graph())
        for op in schedule.ops:
            assert all(d < op.index for d in op.deps)

    def test_dma_inserted_on_engine_crossings(self):
        schedule = GraphCompiler().compile(attention_graph())
        assert schedule.stats["dma_transfers"] >= 2  # MME->TPC and TPC->MME

    def test_dma_disabled(self):
        schedule = GraphCompiler(
            options=CompilerOptions(insert_dma=False)
        ).compile(attention_graph())
        assert schedule.stats["dma_transfers"] == 0
        assert not schedule.engine_queue(EngineKind.DMA)

    def test_fusion_merges_elementwise_chain(self):
        fused = GraphCompiler().compile(attention_graph())
        unfused = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=False)
        ).compile(attention_graph())
        assert fused.stats["fused_chains"] >= 1
        assert len(fused) < len(unfused)

    def test_fusion_reduces_peak_memory(self):
        g = Graph("chain")
        x = g.add_value((1 << 20,), DType.BF16, kind="input")
        h = emit(g, "exp", [x.vid])
        h = emit(g, "smul", [h], {"alpha": 2.0})
        emit(g, "sadd", [h], {"alpha": 1.0})
        fused = GraphCompiler().compile(g)
        unfused = GraphCompiler(
            options=CompilerOptions(fuse_elementwise=False)
        ).compile(g)
        assert fused.memory.peak_bytes < unfused.memory.peak_bytes

    def test_glu_triggers_recompilation(self):
        g = Graph("glu")
        x = g.add_value((128, 64), DType.BF16, kind="input")
        emit(g, "glu", [x.vid])
        schedule = GraphCompiler().compile(g)
        assert schedule.stats["recompilations"] == 1
        host_ops = schedule.engine_queue(EngineKind.HOST)
        assert len(host_ops) == 1
        assert "recompile" in host_ops[0].label

    def test_recompile_once_default(self):
        g = Graph("glu2")
        x = g.add_value((128, 64), DType.BF16, kind="input")
        h = emit(g, "glu", [x.vid])
        emit(g, "glu", [h])  # 64 -> 32
        once = GraphCompiler().compile(g)
        every = GraphCompiler(
            options=CompilerOptions(recompile_once=False)
        ).compile(g)
        assert once.stats["recompilations"] == 1
        assert every.stats["recompilations"] == 2

    def test_memory_plan_counts_params_as_persistent(self):
        g = Graph()
        w = g.add_value((1024, 1024), DType.BF16, kind="param")
        x = g.add_value((8, 1024), DType.BF16, kind="input")
        emit(g, "matmul", [x.vid, w.vid])
        schedule = GraphCompiler().compile(g)
        assert schedule.memory.persistent_bytes >= w.nbytes + x.nbytes
        assert schedule.memory.peak_bytes >= schedule.memory.persistent_bytes

    def test_oom_rejected_at_compile_time(self):
        # A graph whose activations exceed a tiny HBM must be rejected —
        # the effect that forced the paper's e2e batch size down to 8.
        small_hbm = GaudiConfig(hbm=HBMConfig(capacity_bytes=1 << 20))
        g = Graph("big")
        x = g.add_value((4096, 4096), DType.BF16, kind="input")
        emit(g, "exp", [x.vid])
        with pytest.raises(DeviceMemoryError):
            GraphCompiler(small_hbm).compile(g)

    def test_oom_enforcement_can_be_disabled(self):
        small_hbm = GaudiConfig(hbm=HBMConfig(capacity_bytes=1 << 20))
        g = Graph("big")
        x = g.add_value((4096, 4096), DType.BF16, kind="input")
        emit(g, "exp", [x.vid])
        schedule = GraphCompiler(
            small_hbm, CompilerOptions(enforce_memory=False)
        ).compile(g)
        assert schedule.memory.peak_bytes > 1 << 20


class TestRuntime:
    def test_in_order_no_engine_overlap(self):
        schedule = GraphCompiler().compile(attention_graph())
        result = Runtime(GaudiDevice()).execute(schedule)
        validate_no_engine_overlap(result.timeline)

    def test_reorder_no_engine_overlap(self):
        schedule = GraphCompiler().compile(attention_graph())
        result = Runtime(GaudiDevice()).execute(schedule, reorder=True)
        validate_no_engine_overlap(result.timeline)

    def test_dependencies_respected(self):
        schedule = GraphCompiler().compile(attention_graph())
        result = Runtime(GaudiDevice()).execute(schedule)
        events = {i: ev for i, ev in zip(result.issue_order,
                                         result.timeline.events)}
        for op in schedule.ops:
            for dep in op.deps:
                assert events[dep].end_us <= events[op.index].start_us + 1e-9

    def test_reorder_never_slower(self):
        schedule = GraphCompiler().compile(attention_graph())
        t_inorder = Runtime(GaudiDevice()).execute(schedule).total_time_us
        t_reorder = Runtime(GaudiDevice()).execute(
            schedule, reorder=True
        ).total_time_us
        assert t_reorder <= t_inorder * 1.001

    def test_back_to_back_executions_advance_clock(self):
        schedule = GraphCompiler().compile(attention_graph())
        runtime = Runtime(GaudiDevice())
        r1 = runtime.execute(schedule)
        r2 = runtime.execute(schedule)
        assert r2.start_offset_us >= r1.total_time_us - 1e-9
        assert r2.total_time_us == pytest.approx(r1.total_time_us, rel=0.01)


class TestProfilerAndRender:
    def test_profile_result_metrics(self):
        res = SynapseProfiler().profile(attention_graph())
        assert res.total_time_us > 0
        assert 0 < res.utilization(EngineKind.MME) < 1
        assert res.mme_idle_fraction == pytest.approx(
            1 - res.utilization(EngineKind.MME)
        )
        # The headline Fig-4 effect at small scale already: softmax
        # dominates TPC busy time.
        assert res.softmax_tpc_share > 0.5

    def test_summary_text(self):
        res = SynapseProfiler().profile(attention_graph())
        text = res.summary()
        assert "MME utilization" in text and "softmax" in text

    def test_ascii_timeline_lanes(self):
        res = SynapseProfiler().profile(attention_graph())
        art = ascii_timeline(res.timeline, width=60)
        assert "MME" in art and "TPC" in art and "legend" in art

    def test_gap_report(self):
        res = SynapseProfiler().profile(attention_graph())
        text = gap_report(res.timeline, EngineKind.MME, min_dur_us=0.1)
        assert "MME" in text

    def test_chrome_trace_export(self):
        import json

        res = SynapseProfiler().profile(attention_graph())
        data = json.loads(res.timeline.to_chrome_trace())
        assert data["traceEvents"]
        assert {e["tid"] for e in data["traceEvents"]} >= {"MME", "TPC"}
