"""The TP/PP sharding passes: structure, stats, guards, recipe keying.

The tensor-parallel pass shards every eligible matmul's cost geometry
and injects scope-``"tp"`` collectives (all_gather after column-
parallel forwards, all_reduce after row-parallel input gradients, none
after weight gradients); the pipeline pass cuts the non-DDP body into
``pp`` contiguous duration-balanced stages joined by aggregated
send/recv pairs. Both passes are pure cost-model transforms — the
numerics half of the contract lives in ``test_property_parallel.py``.
"""

import dataclasses

import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.costmodel import EngineKind
from repro.synapse import (
    GraphCompiler,
    CompilerOptions,
    default_compiler_options,
)
from repro.synapse.recipe import recipe_key
from repro.util.errors import CompileError


def record_mlp(width=16, depth=2, batch=4):
    lins = [ht.Linear(width, width, materialize=False) for _ in range(depth)]
    with ht.record("tp-mlp", mode="symbolic") as rec:
        h = ht.input_tensor((batch, width), name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


def compile_with(graph, **overrides):
    options = dataclasses.replace(
        default_compiler_options(),
        inject_collectives=True,
        **overrides,
    )
    return GraphCompiler(options=options).compile(graph)


class TestTensorParallelPass:
    def test_off_by_default(self):
        schedule = compile_with(record_mlp())
        assert "tensor_parallel" not in schedule.stats
        assert not any(op.scope == "tp" for op in schedule.ops)

    def test_shards_and_injects_collectives(self):
        schedule = compile_with(record_mlp(depth=2), tp=2)
        info = schedule.stats["tensor_parallel"]
        assert info["tp"] == 2
        # per layer: forward, dX and dW matmuls all shard
        assert info["sharded_matmuls"] == 6
        # forward -> all_gather, dX -> all_reduce; dW shards silently
        assert info["tp_collectives"] == 4
        tp_ops = [op for op in schedule.ops if op.scope == "tp"]
        assert len(tp_ops) == 4
        assert {op.src for op in tp_ops} == {"all_gather", "all_reduce"}
        for op in tp_ops:
            assert op.engine is EngineKind.NIC
            assert not op.node_ids  # the executor must skip them
            assert all(d < op.index for d in op.deps)

    def test_sharded_matmul_geometry_divides(self):
        base = compile_with(record_mlp(width=16))
        tp = compile_with(record_mlp(width=16), tp=4)
        base_flops = sum(
            item.matmul.flops
            for op in base.ops for item in op.items
            if item.matmul is not None
        )
        tp_flops = sum(
            item.matmul.flops
            for op in tp.ops for item in op.items
            if item.matmul is not None
        )
        assert tp_flops * 4 == base_flops

    def test_shard_vids_shrink_ddp_buckets(self):
        """DP gradient buckets price sharded dW tensors at 1/tp bytes."""
        base = compile_with(record_mlp())
        tp = compile_with(record_mlp(), tp=2)
        assert (
            tp.stats["tensor_parallel"]["shard_vids"]
        ), "no gradients marked as sharded"

        def bucket_elems(schedule):
            return sum(
                item.elements
                for op in schedule.ops if op.scope == "ddp"
                for item in op.items
            )

        assert bucket_elems(tp) < bucket_elems(base)

    def test_indivisible_width_left_unsharded(self):
        """Matmuls whose shard axis does not divide stay whole."""
        schedule = compile_with(record_mlp(width=6), tp=4)
        info = schedule.stats["tensor_parallel"]
        assert info["sharded_matmuls"] == 0
        assert info["tp_collectives"] == 0


class TestPipelinePartitionPass:
    def test_off_by_default(self):
        schedule = compile_with(record_mlp())
        assert "pipeline" not in schedule.stats
        assert not any(op.scope == "pp" for op in schedule.ops)

    def test_partitions_into_stages(self):
        pp = 2
        schedule = compile_with(record_mlp(depth=3), pp=pp, microbatches=4)
        info = schedule.stats["pipeline"]
        assert info["pp"] == pp and info["microbatches"] == 4
        stage_of = info["stage_of"]  # aligned with final op indices
        assert len(stage_of) == len(schedule.ops)
        assert set(stage_of) == set(range(pp))
        # the cut is contiguous: stages never decrease along the body
        body_stages = [
            stage_of[op.index] for op in schedule.ops if op.scope != "ddp"
        ]
        assert body_stages == sorted(body_stages)
        # one aggregated send/recv pair per boundary
        sends = [op for op in schedule.ops if op.src == "send"]
        recvs = [op for op in schedule.ops if op.src == "recv"]
        assert len(sends) == len(recvs) == pp - 1
        for send, recv in zip(sends, recvs):
            assert send.scope == recv.scope == "pp"
            assert send.index in recv.deps
        assert len(info["boundary_bytes"]) == pp - 1
        assert all(b > 0 for b in info["boundary_bytes"])

    def test_ddp_tail_lands_on_late_stages(self):
        """Gradient all-reduces ride behind the stages that feed them."""
        schedule = compile_with(record_mlp(depth=3), pp=2, microbatches=4)
        stage_of = schedule.stats["pipeline"]["stage_of"]
        for op in schedule.ops:
            if op.scope == "ddp":
                assert stage_of[op.index] in (0, 1)
                for dep in op.deps:
                    assert stage_of[dep] <= stage_of[op.index]

    def test_deps_stay_backward(self):
        schedule = compile_with(record_mlp(depth=3), pp=4, microbatches=4)
        for op in schedule.ops:
            assert all(d < op.index for d in op.deps), op.label

    def test_rejects_underfilled_pipeline(self):
        with pytest.raises(CompileError, match="microbatches"):
            compile_with(record_mlp(), pp=4, microbatches=2)

    def test_rejects_more_stages_than_ops(self):
        graph = record_mlp(depth=1)
        n_body = len(compile_with(graph).ops)
        with pytest.raises(CompileError, match="fewer than"):
            compile_with(record_mlp(depth=1), pp=2 * n_body,
                         microbatches=2 * n_body)


class TestRecipeKeying:
    """tp/pp/microbatches are compile-relevant: they must key recipes."""

    def test_layouts_get_distinct_signatures(self):
        from repro.hw.config import GaudiConfig

        graph = record_mlp()
        base = default_compiler_options()
        config = GaudiConfig()
        seen = set()
        for overrides in ({}, {"tp": 2}, {"tp": 4},
                          {"pp": 2, "microbatches": 2},
                          {"pp": 2, "microbatches": 4},
                          {"tp": 2, "pp": 2, "microbatches": 2}):
            options = dataclasses.replace(
                base, inject_collectives=True, **overrides
            )
            seen.add(recipe_key(graph, config, options))
        assert len(seen) == 6

    def test_default_options_expose_parallel_fields(self):
        options = CompilerOptions()
        assert options.tp == 1
        assert options.pp == 1
        assert options.microbatches == 1

    def test_tp_and_pp_compose(self):
        schedule = compile_with(record_mlp(depth=3), tp=2, pp=2,
                                microbatches=4)
        assert schedule.stats["tensor_parallel"]["sharded_matmuls"] > 0
        assert schedule.stats["pipeline"]["pp"] == 2
        scopes = {op.scope for op in schedule.ops if op.scope}
        assert {"tp", "pp", "ddp"} <= scopes
