"""Tests: energy model, DOT export, and runtime/device consistency."""

import pytest

from repro import ht
from repro.ht import functional as F
from repro.core import run_energy_study
from repro.hw import (
    EnergyBreakdown,
    EnergyConfig,
    EngineKind,
    GaudiDevice,
    joules_per_token,
    schedule_energy,
)
from repro.synapse import (
    GraphCompiler,
    Runtime,
    graph_to_dot,
    schedule_to_dot,
)
from repro.util.errors import ConfigError


def attention_schedule():
    with ht.record("attn", mode="symbolic") as rec:
        a = ht.input_tensor((128, 128), name="a")
        b = ht.input_tensor((128, 128), name="b")
        F.matmul(F.softmax(F.matmul(a, b)), b)
    return rec, GraphCompiler().compile(rec.graph)


class TestEnergyModel:
    def test_components_positive(self):
        _, schedule = attention_schedule()
        e = schedule_energy(schedule, makespan_us=1000.0)
        assert e.mme_joules > 0
        assert e.tpc_joules > 0
        assert e.hbm_joules > 0
        assert e.static_joules == pytest.approx(100.0 * 1e-3)  # 100 W x 1 ms
        assert e.total_joules == pytest.approx(
            e.mme_joules + e.tpc_joules + e.hbm_joules + e.dma_joules
            + e.static_joules
        )

    def test_zero_idle_power(self):
        _, schedule = attention_schedule()
        e = schedule_energy(schedule, 1000.0, EnergyConfig(idle_watts=0.0))
        assert e.static_joules == 0.0

    def test_energy_scales_with_constants(self):
        _, schedule = attention_schedule()
        base = schedule_energy(schedule, 0.0)
        double = schedule_energy(
            schedule, 0.0, EnergyConfig(mme_pj_per_flop=1.6)
        )
        assert double.mme_joules == pytest.approx(2 * base.mme_joules)

    def test_joules_per_token(self):
        b = EnergyBreakdown(1.0, 1.0, 1.0, 0.0, 1.0)
        assert joules_per_token(b, 4) == pytest.approx(1.0)
        with pytest.raises(ConfigError):
            joules_per_token(b, 0)

    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigError):
            EnergyConfig(hbm_pj_per_byte=-1.0)
        _, schedule = attention_schedule()
        with pytest.raises(ConfigError):
            schedule_energy(schedule, -1.0)

    def test_dominant(self):
        b = EnergyBreakdown(5.0, 1.0, 2.0, 0.1, 99.0)
        assert b.dominant() == "mme"  # static excluded by design


class TestEnergyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_energy_study()

    def test_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_linear_cheapest(self, result):
        joules = {v: result.joules(v) for v in result.variants}
        assert min(joules, key=joules.get) == "linear"

    def test_pipelined_same_arithmetic_less_total(self, result):
        soft = result.breakdowns["softmax"]
        pipe = result.breakdowns["pipelined"]
        # same math -> nearly equal MME arithmetic energy
        assert pipe.mme_joules == pytest.approx(soft.mme_joules, rel=0.05)
        assert result.joules("pipelined") < result.joules("softmax")

    def test_render(self, result):
        assert "mJ/token" in result.render()


class TestDotExport:
    def test_graph_dot_structure(self):
        rec, _ = attention_schedule()
        dot = graph_to_dot(rec.graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "matmul" in dot and "->" in dot
        # engine colors present
        assert "#8ecae6" in dot and "#ffb703" in dot

    def test_schedule_dot_has_dma_diamonds(self):
        _, schedule = attention_schedule()
        dot = schedule_to_dot(schedule)
        assert "diamond" in dot
        assert "digraph" in dot

    def test_truncation(self):
        with ht.record("big", mode="symbolic") as rec:
            x = ht.input_tensor((8,), name="x")
            for _ in range(30):
                x = F.exp(x)
        dot = graph_to_dot(rec.graph, max_nodes=5)
        assert "more nodes" in dot

    def test_quotes_escaped(self):
        with ht.record('we"ird', mode="symbolic") as rec:
            ht.input_tensor((2,), name="x")
        dot = graph_to_dot(rec.graph)
        assert '\\"' in dot


class TestRuntimeDeviceConsistency:
    """The device's EngineTimeline and the trace must agree."""

    @pytest.mark.parametrize("reorder", [False, True])
    def test_busy_times_match(self, reorder):
        _, schedule = attention_schedule()
        device = GaudiDevice()
        result = Runtime(device).execute(schedule, reorder=reorder)
        for engine in (EngineKind.MME, EngineKind.TPC, EngineKind.DMA):
            trace_busy = result.timeline.busy_time_us(engine)
            device_busy = device.timeline(engine).busy_time()
            assert trace_busy == pytest.approx(device_busy, abs=1e-6)

    def test_device_clock_matches_trace_end(self):
        _, schedule = attention_schedule()
        device = GaudiDevice()
        result = Runtime(device).execute(schedule)
        assert device.now == pytest.approx(
            max(ev.end_us for ev in result.timeline.events)
        )
