"""Tests for the long-sequence sweep and the full-study orchestrator."""

import pytest

from repro.core import run_full_study, run_seq_sweep


class TestSeqSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_seq_sweep((256, 512, 1024, 2048))

    def test_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_quadratic_vs_linear_growth(self, result):
        soft = result.doubling_ratios(result.softmax_ms())
        lin = result.doubling_ratios(result.linear_ms())
        # softmax asymptotically ~4x per doubling, linear ~2x
        assert soft[-1] > lin[-1] + 0.5

    def test_speedup_exceeds_one_everywhere(self, result):
        assert all(s > 1.0 for s in result.speedups())

    def test_render(self, result):
        text = result.render()
        assert "seq len" in text and "speedup" in text


class TestFullStudy:
    @pytest.fixture(scope="class")
    def report(self):
        return run_full_study()

    def test_all_shape_checks_pass(self, report):
        failed = [str(c) for c in report.failed_checks()]
        assert report.all_passed, failed

    def test_covers_every_artifact(self, report):
        titles = [t for t, _ in report.sections]
        for needle in ("Table 1", "Table 2", "Figures 4-6", "Figure 7",
                       "Figure 8", "Figure 9", "A1", "A2", "A3", "A4", "A5",
                       "A6", "A7", "A8", "Long-sequence"):
            assert any(needle in t for t in titles), f"missing {needle}"

    def test_check_count_substantial(self, report):
        assert len(report.checks) >= 50

    def test_render_is_complete(self, report):
        text = report.render()
        assert "shape checks" in text
        assert "[PASS]" in text
        assert "[MISS]" not in text

    def test_without_extensions(self):
        report = run_full_study(include_extensions=False)
        titles = [t for t, _ in report.sections]
        assert not any(t.startswith("A1") for t in titles)
        assert report.all_passed
