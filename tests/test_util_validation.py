"""Unit tests for repro.util.validation and the error hierarchy."""

import pytest

from repro.util import errors, validation


class TestCheckPositive:
    def test_accepts_positive(self):
        assert validation.check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(errors.ConfigError, match="x must be > 0"):
            validation.check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert validation.check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(errors.ConfigError):
            validation.check_non_negative("x", -1e-9)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert validation.check_positive_int("n", 8) == 8

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "8"])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(errors.ConfigError):
            validation.check_positive_int("n", bad)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert validation.check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5])
    def test_rejects_outside(self, bad):
        with pytest.raises(errors.ConfigError):
            validation.check_fraction("f", bad)


class TestCheckIn:
    def test_accepts_member(self):
        assert validation.check_in("mode", "a", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(errors.ConfigError, match="mode"):
            validation.check_in("mode", "c", ["a", "b"])


class TestCheckShape:
    def test_accepts_rank_up_to_5(self):
        assert validation.check_shape("t", [1, 2, 3, 4, 5]) == (1, 2, 3, 4, 5)

    def test_accepts_scalar(self):
        assert validation.check_shape("t", []) == ()

    def test_rejects_rank_6(self):
        # Gaudi TPC tensors are rank 1..5 (paper section 2.2).
        with pytest.raises(errors.ShapeError, match="rank 6"):
            validation.check_shape("t", [1] * 6)

    @pytest.mark.parametrize("bad", [[-1], [2.0, 3], [True]])
    def test_rejects_bad_dims(self, bad):
        with pytest.raises(errors.ShapeError):
            validation.check_shape("t", bad)


class TestSameShape:
    def test_matching(self):
        assert validation.same_shape("x", (2, 3), [2, 3]) == (2, 3)

    def test_mismatch(self):
        with pytest.raises(errors.ShapeError, match="shapes differ"):
            validation.same_shape("x", (2, 3), (3, 2))


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.ShapeError,
            errors.GraphError,
            errors.CompileError,
            errors.ExecutionError,
            errors.KernelError,
            errors.AutogradError,
            errors.DataError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_device_memory_error_carries_sizes(self):
        err = errors.DeviceMemoryError(100, 50, detail="test")
        assert err.required_bytes == 100
        assert err.capacity_bytes == 50
        assert "test" in str(err)
        assert isinstance(err, errors.ReproError)
