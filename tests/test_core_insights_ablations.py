"""Tests for trace analytics, ablations, the scaling extension, and the
full-study orchestrator."""

import pytest

from repro.core import (
    bottleneck_report,
    describe_insights,
    gap_overlap_fraction,
    imbalance_index,
    max_batch_that_fits,
    overlap_fraction,
    run_chunked_attention_study,
    run_fusion_ablation,
    run_reorder_ablation,
    run_scaling_study,
    run_tpc_core_sweep,
)
from repro.hw.costmodel import EngineKind
from repro.synapse.trace import Timeline, TraceEvent


def make_timeline():
    """MME busy [0,10) and [30,40); TPC busy [10,30)."""
    return Timeline([
        TraceEvent("mm1", EngineKind.MME, 0.0, 10.0, src="matmul"),
        TraceEvent("soft", EngineKind.TPC, 10.0, 20.0, src="softmax"),
        TraceEvent("mm2", EngineKind.MME, 30.0, 10.0, src="matmul"),
    ])


class TestInsights:
    def test_gap_overlap_full(self):
        tl = make_timeline()
        # the MME's single gap [10,30) is fully covered by TPC work
        assert gap_overlap_fraction(tl, EngineKind.MME, EngineKind.TPC) == \
            pytest.approx(1.0)

    def test_gap_overlap_none(self):
        tl = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.MME, 20.0, 10.0),
            TraceEvent("c", EngineKind.TPC, 0.0, 5.0),
        ])
        assert gap_overlap_fraction(tl, EngineKind.MME, EngineKind.TPC) == 0.0

    def test_gap_overlap_no_gaps(self):
        tl = Timeline([TraceEvent("a", EngineKind.MME, 0.0, 10.0)])
        assert gap_overlap_fraction(tl, EngineKind.MME, EngineKind.TPC) == 0.0

    def test_overlap_fraction(self):
        tl = Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0),
            TraceEvent("b", EngineKind.TPC, 5.0, 10.0),
        ])
        assert overlap_fraction(tl) == pytest.approx(5.0 / 15.0)

    def test_overlap_fraction_empty(self):
        assert overlap_fraction(Timeline()) == 0.0

    def test_imbalance_index(self):
        tl = make_timeline()  # MME 20us, TPC 20us
        assert imbalance_index(tl) == pytest.approx(0.0)
        lopsided = Timeline([TraceEvent("a", EngineKind.TPC, 0.0, 30.0)])
        assert imbalance_index(lopsided) == pytest.approx(1.0)
        assert imbalance_index(Timeline()) == 0.0

    def test_bottleneck_report(self):
        tl = make_timeline()
        entries = bottleneck_report(tl, EngineKind.MME)
        assert entries[0].src == "matmul"
        assert entries[0].share == pytest.approx(1.0)
        assert bottleneck_report(Timeline(), EngineKind.MME) == []

    def test_describe_insights_text(self):
        text = describe_insights(make_timeline())
        assert "MME idle" in text and "softmax" in text


class TestReorderAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_reorder_ablation("performer")

    def test_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_reordering_improves_performer(self, result):
        # The paper blames the Performer MME gap on the compiler not
        # detecting q'/k' independence; a free-order scheduler should
        # claw back some makespan.
        assert result.improvement > 0.02

    def test_render(self, result):
        assert "issue mode" in result.render()


class TestFusionAblation:
    def test_checks_pass(self):
        result = run_fusion_ablation("softmax")
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed
        assert result.speedup >= 1.0


class TestTpcCoreSweep:
    def test_checks_pass(self):
        result = run_tpc_core_sweep((2, 4, 8))
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_softmax_share_stays_high(self):
        result = run_tpc_core_sweep((4, 8))
        assert all(s > 0.5 for s in result.softmax_share)


class TestScalingStudy:
    def test_checks_pass(self):
        result = run_scaling_study("gpt")
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_single_card_efficiency_is_one(self):
        result = run_scaling_study("gpt", card_counts=(1, 2))
        assert result.rows[0].efficiency == pytest.approx(1.0)
        assert result.rows[0].allreduce_ms == 0.0

    def test_gradient_bytes_positive(self):
        result = run_scaling_study("bert", card_counts=(1,))
        assert result.gradient_bytes > 10**7  # tens of MB of weights


class TestChunkedExtension:
    def test_checks_pass(self):
        result = run_chunked_attention_study((512, 1024, 2048))
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_speedup_grows(self):
        result = run_chunked_attention_study((512, 2048))
        sp = result.speedups()
        assert sp[-1] > sp[0] > 1.0


class TestMaxBatch:
    def test_paper_batch_8_is_feasible_and_128_is_not(self):
        best = max_batch_that_fits("gpt", candidates=(8, 16, 32, 64, 128))
        assert 8 <= best < 128
