"""Unit tests for repro.hw.device and repro.hw.interconnect."""

import pytest

from repro.hw import (
    AllGather,
    EngineKind,
    GaudiConfig,
    GaudiDevice,
    HLS1Config,
    HLS1System,
    HostLink,
    InterconnectConfig,
    RingAllReduce,
    data_parallel_step_time_us,
    default_device,
    scaling_efficiency,
)
from repro.hw.interconnect import log2_cards
from repro.util.errors import ConfigError


class TestGaudiDevice:
    def test_fresh_device_clock_zero(self):
        dev = default_device()
        assert dev.now == 0.0

    def test_clock_advances_with_reservations(self):
        dev = default_device()
        dev.timeline(EngineKind.MME).reserve(0.0, 100.0, "mm")
        dev.timeline(EngineKind.TPC).reserve(0.0, 250.0, "softmax")
        assert dev.now == 250.0
        assert dev.utilization(EngineKind.MME) == pytest.approx(0.4)
        assert dev.utilization(EngineKind.TPC) == pytest.approx(1.0)

    def test_reset(self):
        dev = default_device()
        dev.timeline(EngineKind.MME).reserve(0.0, 10.0)
        dev.hbm.alloc(1024)
        dev.reset()
        assert dev.now == 0.0
        assert dev.hbm.live_bytes == 0

    def test_describe_mentions_engines(self):
        text = default_device().describe()
        assert "MME" in text and "TPC" in text and "HBM" in text

    def test_memory_enforcement_toggle(self):
        dev = GaudiDevice(GaudiConfig(), enforce_memory=False)
        dev.hbm.alloc(10**14)  # way past 32 GiB, allowed when not enforcing
        assert dev.hbm.peak_bytes == 10**14


class TestHLS1System:
    def test_eight_cards(self):
        box = HLS1System(HLS1Config())
        assert len(box) == 8
        assert box.card(0) is not box.card(1)

    def test_reset_all(self):
        box = HLS1System(HLS1Config(num_cards=2))
        box.card(0).timeline(EngineKind.MME).reserve(0.0, 5.0)
        box.reset()
        assert box.card(0).now == 0.0


class TestRingAllReduce:
    def test_single_card_free(self):
        cost = RingAllReduce(InterconnectConfig()).cost(1, 10**9)
        assert cost.time_us == 0.0 and cost.steps == 0

    def test_bandwidth_term_dominates_large_payload(self):
        cfg = InterconnectConfig(roce_latency_us=0.0)
        cost = RingAllReduce(cfg).cost(8, 10**9)
        expected = 2 * 7 / 8 * 10**9 / cfg.roce_bandwidth_bytes_per_s * 1e6
        assert cost.time_us == pytest.approx(expected)

    def test_latency_term(self):
        cfg = InterconnectConfig(roce_latency_us=3.0)
        cost = RingAllReduce(cfg).cost(4, 0)
        assert cost.time_us == pytest.approx(2 * 3 * 3.0)

    def test_time_grows_slowly_with_cards(self):
        # (p-1)/p factor: going 2 -> 8 cards less than doubles the
        # bandwidth term.
        ar = RingAllReduce(InterconnectConfig(roce_latency_us=0.0))
        t2 = ar.cost(2, 10**9).time_us
        t8 = ar.cost(8, 10**9).time_us
        assert t2 < t8 < 2 * t2

    def test_invalid_inputs(self):
        ar = RingAllReduce(InterconnectConfig())
        with pytest.raises(ConfigError):
            ar.cost(0, 100)
        with pytest.raises(ConfigError):
            ar.cost(2, -1)


class TestAllGatherHostLink:
    def test_allgather_single_card_free(self):
        assert AllGather(InterconnectConfig()).cost(1, 100).time_us == 0.0

    def test_allgather_scales_with_cards(self):
        ag = AllGather(InterconnectConfig(roce_latency_us=0.0))
        assert ag.cost(4, 10**8).time_us == pytest.approx(
            3 * 10**8 / InterconnectConfig().roce_bandwidth_bytes_per_s * 1e6
        )

    def test_host_link(self):
        cfg = InterconnectConfig(pcie_bandwidth_bytes_per_s=1e9, pcie_latency_us=5.0)
        assert HostLink(cfg).transfer_time_us(10**9) == pytest.approx(1e6 + 5.0)

    def test_host_link_negative_rejected(self):
        with pytest.raises(ConfigError):
            HostLink(InterconnectConfig()).transfer_time_us(-1)


class TestDataParallelStep:
    def test_no_overlap(self):
        cfg = InterconnectConfig(roce_latency_us=0.0)
        comm = RingAllReduce(cfg).cost(8, 10**8).time_us
        total = data_parallel_step_time_us(1000.0, 10**8, 8, cfg)
        assert total == pytest.approx(1000.0 + comm)

    def test_full_overlap_hides_comm_under_compute(self):
        cfg = InterconnectConfig(roce_latency_us=0.0)
        total = data_parallel_step_time_us(
            10_000.0, 10**6, 8, cfg, overlap_fraction=1.0
        )
        assert total == pytest.approx(10_000.0)

    def test_invalid_overlap(self):
        with pytest.raises(ConfigError):
            data_parallel_step_time_us(1.0, 1, 2, InterconnectConfig(),
                                       overlap_fraction=1.5)

    def test_scaling_efficiency(self):
        assert scaling_efficiency(10.0, 12.5, 8) == pytest.approx(0.8)
        with pytest.raises(ConfigError):
            scaling_efficiency(0.0, 1.0, 2)


class TestLog2Cards:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (8, 3)])
    def test_powers_of_two(self, n, expected):
        assert log2_cards(n) == expected

    @pytest.mark.parametrize("bad", [0, 3, 6, -4])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ConfigError):
            log2_cards(bad)
