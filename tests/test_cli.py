"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_study_flags(self):
        args = build_parser().parse_args(["study", "--no-extensions",
                                          "-o", "out.txt"])
        assert args.no_extensions and args.output == "out.txt"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "MME" in out and "HBM" in out

    def test_table1_passes(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "[PASS]" in out and "[MISS]" not in out

    def test_table2_passes(self, capsys):
        assert main(["table2"]) == 0
        assert "Speedup" in capsys.readouterr().out

    def test_ablation_fusion(self, capsys):
        assert main(["ablation-fusion"]) == 0

    def test_study_writes_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        code = main(["study", "--no-extensions", "-o", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "shape checks" in text
        assert "[MISS]" not in text

    def test_study_artifacts_flag(self, tmp_path, capsys):
        art = tmp_path / "artifacts"
        code = main(["study", "--no-extensions", "--artifacts", str(art)])
        assert code == 0
        assert (art / "report.txt").exists()
        assert (art / "checks.json").exists()

    def test_decode_and_energy_commands(self, capsys):
        assert main(["decode"]) == 0
        assert main(["energy"]) == 0
