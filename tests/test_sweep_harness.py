"""The sweep harness: grids as data, shared recipes, streamed JSONL.

Pins the declarative layer A4/A12/A13/A14 run on: deterministic grid
expansion, policy application, recipe reuse across points (memory
tier serially, the warm disk tier across pooled workers), JSONL
streaming in spec order, and rows that are byte-identical at any
``jobs`` width.
"""

import json

from repro.core.sweep import (
    SWEEP_POLICIES,
    SweepPoint,
    SweepSpec,
    run_sweep,
    sweep_spec_from_cli,
)
from repro.hw.config import HLS1Config

import pytest


def small_spec(**kwargs):
    defaults = dict(
        name="t",
        models=("layer:softmax",),
        batches=(2,),
        seq_lens=(64,),
        policies=(("ddp", (("inject_collectives", True),)),),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSpecExpansion:
    def test_cartesian_order_is_policy_innermost(self):
        spec = SweepSpec(
            name="g",
            models=("a", "b"),
            batches=(1, 2),
            cards=(1, 4),
            policies=(("p", ()), ("q", ())),
        )
        points = spec.expand()
        assert len(points) == 2 * 2 * 2 * 2
        assert [(p.model, p.batch, p.cards, p.policy)
                for p in points[:4]] == [
            ("a", 1, 1, "p"), ("a", 1, 1, "q"),
            ("a", 1, 4, "p"), ("a", 1, 4, "q"),
        ]
        assert points[-1] == SweepPoint(
            model="b", batch=2, seq_len=None, cards=4, policy="q",
        )

    def test_explicit_points_win_over_axes(self):
        pts = (SweepPoint(model="gpt", cards=8, policy="x"),)
        spec = SweepSpec(name="e", models=("a", "b"), points=pts)
        assert spec.expand() == list(pts)

    def test_point_options_apply_policy_delta(self):
        from repro.synapse import default_compiler_options

        point = SweepPoint(
            model="gpt", policy="p",
            overrides=(("inject_collectives", True), ("bucket_mb", 4.0)),
        )
        opts = point.options(default_compiler_options())
        assert opts.inject_collectives is True
        assert opts.bucket_mb == 4.0
        # untouched fields keep the base values
        assert opts.comm_overlap is True

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            run_sweep(SweepSpec(name="empty", models=()))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_sweep(small_spec(executor="nope"))

    def test_cli_spec_builder_validates_policies(self):
        with pytest.raises(ValueError, match="unknown sweep policy"):
            sweep_spec_from_cli([], [], [], [], ["bogus"])
        spec = sweep_spec_from_cli(
            ["gpt"], [4], [], [1, 4], ["ddp", "no-overlap"]
        )
        assert spec.models == ("gpt",)
        assert spec.cards == (1, 4)
        assert [p for p, _ in spec.policies] == ["ddp", "no-overlap"]
        assert dict(spec.policies)["no-overlap"] == (
            SWEEP_POLICIES["no-overlap"]
        )


class TestSerialExecution:
    def test_repeated_recipe_compiles_once(self):
        # same workload/options at two card counts: the second point
        # must reuse the first point's recipe from the memory tier
        spec = small_spec(cards=(1, 2))
        result = run_sweep(spec, hls1=HLS1Config())
        sources = [r.metrics["compile"] for r in result.results]
        assert sources == ["cold", "memory"]
        assert (result.results[0].metrics["total_time_us"] > 0)

    def test_stream_jsonl_in_spec_order(self, tmp_path):
        out = tmp_path / "points.jsonl"
        spec = small_spec(cards=(1, 2))
        result = run_sweep(spec, hls1=HLS1Config(), stream=out)
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == 2
        assert [l["cards"] for l in lines] == [1, 2]
        for line, pr in zip(lines, result.results):
            assert line == pr.to_json(spec.name)

    def test_result_for_lookup(self):
        spec = small_spec(cards=(1, 2))
        result = run_sweep(spec, hls1=HLS1Config())
        assert result.result_for(cards=2).point.cards == 2
        with pytest.raises(KeyError):
            result.result_for(cards=16)

    def test_render_mentions_every_point(self):
        result = run_sweep(small_spec(cards=(1, 2)), hls1=HLS1Config())
        text = result.render()
        assert "2 point(s)" in text
        assert "ddp" in text


class TestPooledExecution:
    def test_jobs_rows_byte_identical_and_disk_warm(self, tmp_path):
        spec = small_spec(cards=(1, 2, 4))
        serial = run_sweep(spec, hls1=HLS1Config())
        pooled = run_sweep(
            spec, hls1=HLS1Config(), jobs=2, recipe_dir=tmp_path
        )
        for a, b in zip(serial.results, pooled.results):
            assert a.point == b.point
            for key in ("total_time_us", "exposed_comm_us",
                        "fabric_busy_us", "all_reduce_ops"):
                assert a.metrics[key] == b.metrics[key], key
        # the parent warmed the shared disk cache: every worker
        # replayed the recipe by signature instead of recompiling
        assert [r.metrics["compile"] for r in pooled.results] == (
            ["disk"] * 3
        )
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_pooled_stream_matches_serial(self, tmp_path):
        spec = small_spec(cards=(1, 2))
        a, b = tmp_path / "serial.jsonl", tmp_path / "pooled.jsonl"
        run_sweep(spec, hls1=HLS1Config(), stream=a)
        run_sweep(spec, hls1=HLS1Config(), jobs=2, stream=b)
        serial = [json.loads(l) for l in a.read_text().splitlines()]
        pooled = [json.loads(l) for l in b.read_text().splitlines()]
        for x, y in zip(serial, pooled):
            x.pop("compile"), y.pop("compile")
            assert x == y


class TestProfileExecutor:
    def test_profile_points_carry_rich_results(self):
        spec = small_spec(
            executor="profile",
            policies=(
                ("in-order", (("reorder", False),)),
                ("lookahead",
                 (("reorder", True), ("scheduler", "lookahead"))),
            ),
        )
        result = run_sweep(spec)
        assert len(result.results) == 2
        for pr in result.results:
            assert pr.profile is not None
            assert pr.metrics["total_time_us"] == pr.profile.total_time_us
            assert pr.metrics["peak_bytes"] > 0

    def test_graph_memo_shared_across_sweeps(self):
        graphs = {}
        spec = small_spec(
            models=("gpt",), batches=(2,), seq_lens=(64,),
            executor="profile",
            policies=(("oracle", (("use_recipe_cache", False),)),),
        )
        run_sweep(spec, graphs=graphs)
        assert ("gpt", 2, 64, False) in graphs
        before = dict(graphs)
        run_sweep(spec, graphs=graphs)  # reuses, doesn't re-record
        assert {k: id(v) for k, v in graphs.items()} == (
            {k: id(v) for k, v in before.items()}
        )
