"""Tests for feed-forward, transformer layers, BERT and GPT models."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.models import (
    AttentionConfig,
    BertForMaskedLM,
    FeedForward,
    GPT2LMHeadModel,
    LayerConfig,
    LLMConfig,
    TransformerLayer,
    TransformerStack,
    paper_bert_config,
    paper_gpt_config,
    paper_layer_config,
    tiny_bert_config,
    tiny_gpt_config,
)
from repro.util.errors import ConfigError, ShapeError


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestFeedForward:
    @pytest.mark.parametrize("act", ["relu", "leaky_relu", "gelu", "glu"])
    def test_shapes(self, rng, act):
        ffn = FeedForward(8, ffn_mult=2, activation=act, rng=rng)
        with ht.record():
            out = ffn(ht.randn(3, 5, 8))
            assert out.shape == (3, 5, 8)

    def test_glu_uses_double_width_first_projection(self, rng):
        ffn = FeedForward(8, ffn_mult=2, activation="glu", rng=rng)
        assert ffn.w1.out_features == 32  # 2 * (8 * 2)
        assert ffn.w2.in_features == 16

    def test_unknown_activation(self):
        with pytest.raises(ConfigError):
            FeedForward(8, activation="swish")

    def test_relu_ffn_matches_numpy(self, rng):
        ffn = FeedForward(4, ffn_mult=2, activation="relu", rng=rng)
        x = rng.normal(size=(2, 3, 4))
        with ht.record():
            out = ffn(ht.tensor(x)).numpy()
        h = np.maximum(x @ ffn.w1.weight.data + ffn.w1.bias.data, 0)
        ref = h @ ffn.w2.weight.data + ffn.w2.bias.data
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


class TestTransformerLayer:
    def test_paper_layer_config_defaults(self):
        cfg = paper_layer_config("softmax")
        assert cfg.attention.num_heads == 6
        assert cfg.attention.head_dim == 64
        assert cfg.d_model == 384
        assert not cfg.include_ffn  # the 3.3 study profiles attention

    def test_forward_shapes(self, rng):
        cfg = LayerConfig(attention=AttentionConfig(num_heads=2, head_dim=4),
                          ffn_mult=2)
        layer = TransformerLayer(cfg, rng=rng)
        with ht.record():
            out = layer(ht.randn(2, 6, 8))
            assert out.shape == (2, 6, 8)

    def test_no_ffn_layer_has_no_ffn_params(self, rng):
        cfg = paper_layer_config("softmax")
        layer = TransformerLayer(cfg, rng=rng, materialize=False)
        names = [n for n, _ in layer.named_parameters()]
        assert not any("ffn" in n for n in names)

    def test_post_norm_variant(self, rng):
        cfg = LayerConfig(
            attention=AttentionConfig(num_heads=2, head_dim=4),
            ffn_mult=2, pre_norm=False,
        )
        layer = TransformerLayer(cfg, rng=rng)
        with ht.record():
            out = layer(ht.randn(2, 6, 8))
            assert np.isfinite(out.numpy()).all()

    def test_stack(self, rng):
        cfg = LayerConfig(attention=AttentionConfig(num_heads=2, head_dim=4),
                          ffn_mult=2)
        stack = TransformerStack(cfg, 3, rng=rng)
        assert len(stack) == 3
        with ht.record():
            out = stack(ht.randn(2, 4, 8))
            assert out.shape == (2, 4, 8)

    def test_layers_have_distinct_parameters(self, rng):
        cfg = LayerConfig(attention=AttentionConfig(num_heads=2, head_dim=4))
        stack = TransformerStack(cfg, 2, rng=rng)
        w0 = stack.layers[0].attn.wq.weight.data
        w1 = stack.layers[1].attn.wq.weight.data
        assert not np.allclose(w0, w1)


class TestConfigs:
    def test_paper_bert(self):
        cfg = paper_bert_config()
        assert cfg.vocab_size == 30522
        assert cfg.num_layers == 2
        assert cfg.d_model == 512
        assert not cfg.layer.attention.causal

    def test_paper_gpt(self):
        cfg = paper_gpt_config()
        assert cfg.vocab_size == 50257
        assert cfg.layer.attention.causal

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            AttentionConfig(kind="flash")
        with pytest.raises(ConfigError):
            AttentionConfig(num_heads=0)
        with pytest.raises(ConfigError):
            LayerConfig(activation="swish")
        with pytest.raises(ConfigError):
            LLMConfig(vocab_size=0)


class TestBert:
    def test_forward_logits_shape(self, rng):
        cfg = tiny_bert_config(vocab_size=50)
        model = BertForMaskedLM(cfg, rng=rng)
        ids = rng.integers(0, 50, size=(2, 8))
        with ht.record():
            logits = model(ht.tensor(ids))
            assert logits.shape == (2, 8, 50)

    def test_loss_and_backward(self, rng):
        cfg = tiny_bert_config(vocab_size=23)
        model = BertForMaskedLM(cfg, rng=rng)
        ids = rng.integers(0, 23, size=(2, 8))
        onehot = np.eye(23, dtype=np.float32)[rng.integers(0, 23, size=(2, 8))]
        with ht.record():
            loss = model.loss(ht.tensor(ids), ht.tensor(onehot))
            assert np.isfinite(loss.item())
            loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) > 10

    def test_training_reduces_loss(self, rng):
        cfg = tiny_bert_config(vocab_size=17)
        model = BertForMaskedLM(cfg, rng=rng)
        ids = rng.integers(0, 17, size=(4, 6))
        onehot = np.eye(17, dtype=np.float32)[ids]  # identity reconstruction
        opt = ht.SGD(model.parameters(), lr=0.5)
        losses = []
        for _ in range(8):
            with ht.record():
                loss = model.loss(ht.tensor(ids), ht.tensor(onehot))
                loss.backward()
                opt.step()
                opt.zero_grad()
                losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_seq_too_long_rejected(self, rng):
        cfg = tiny_bert_config()
        model = BertForMaskedLM(cfg, rng=rng)
        with ht.record():
            ids = ht.tensor(np.zeros((1, cfg.max_seq_len + 1)))
            with pytest.raises(ShapeError, match="exceeds"):
                model(ids)


class TestGPT:
    def test_forward_logits_shape(self, rng):
        cfg = tiny_gpt_config(vocab_size=31)
        model = GPT2LMHeadModel(cfg, rng=rng)
        ids = rng.integers(0, 31, size=(2, 8))
        with ht.record():
            logits = model(ht.tensor(ids))
            assert logits.shape == (2, 8, 31)

    def test_causality_of_logits(self, rng):
        cfg = tiny_gpt_config(vocab_size=19)
        model = GPT2LMHeadModel(cfg, rng=rng)
        ids = rng.integers(0, 19, size=(1, 8))
        ids2 = ids.copy()
        ids2[0, -1] = (ids2[0, -1] + 1) % 19
        with ht.record():
            a = model(ht.tensor(ids)).numpy()
            b = model(ht.tensor(ids2)).numpy()
        np.testing.assert_allclose(a[:, :-1], b[:, :-1], rtol=1e-4, atol=1e-5)

    def test_requires_causal_config(self):
        with pytest.raises(ConfigError, match="causal"):
            GPT2LMHeadModel(tiny_bert_config(), materialize=False)

    def test_training_step_records_forward_backward_update(self, rng):
        cfg = tiny_gpt_config(vocab_size=13)
        model = GPT2LMHeadModel(cfg, rng=rng)
        opt = ht.SGD(model.parameters(), lr=0.1)
        ids = rng.integers(0, 13, size=(2, 8))
        onehot = np.eye(13, dtype=np.float32)[rng.integers(0, 13, size=(2, 8))]
        with ht.record("gpt-step") as rec:
            loss = model.loss(ht.tensor(ids), ht.tensor(onehot))
            loss.backward()
            opt.step()
        scopes = {n.scope for n in rec.graph.nodes}
        assert any("bwd" in s for s in scopes)
        assert any("optimizer" in s for s in scopes)
        assert any("loss" in s for s in scopes)

    def test_symbolic_paper_scale_graph_builds(self):
        model = GPT2LMHeadModel(paper_gpt_config(), materialize=False)
        with ht.record("gpt", mode="symbolic") as rec:
            ids = ht.input_tensor((8, 2048))
            logits = model(ids)
            assert logits.shape == (8, 2048, 50257)
        assert len(rec.graph) > 50
