"""Tests for the graph linter and the data-movement TPC kernels."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.dtypes import DType
from repro.synapse import lint_graph, render_warnings
from repro.tpc import REGISTRY, TPCSimulator


def rules(warnings):
    return {w.rule for w in warnings}


class TestLint:
    def test_clean_graph(self):
        with ht.record() as rec:
            a = ht.tensor(np.zeros((64, 64), np.float32), name="a")
            b = ht.tensor(np.zeros((64, 64), np.float32), name="b")
            F.matmul(a, b)
        warnings = lint_graph(rec.graph)
        assert warnings == []
        assert "clean" in render_warnings(warnings)

    def test_mixed_dtype_flagged(self):
        with ht.record(mode="symbolic") as rec:
            a = ht.input_tensor((4, 4), dtype=DType.BF16, name="a")
            b = ht.input_tensor((4, 4), dtype=DType.FP32, name="b")
            F.add(a, b)
        assert "mixed-dtype" in rules(lint_graph(rec.graph))

    def test_recompile_flagged_for_glu(self):
        with ht.record(mode="symbolic") as rec:
            F.glu(ht.input_tensor((4, 8), name="x"))
        assert "recompile" in rules(lint_graph(rec.graph))

    def test_foldable_transpose(self):
        with ht.record(mode="symbolic") as rec:
            a = ht.input_tensor((4, 4), name="a")
            at = F.transpose(a)
            F.matmul(at, a)
        assert "foldable-transpose" in rules(lint_graph(rec.graph))

    def test_transpose_with_other_consumer_not_flagged(self):
        with ht.record(mode="symbolic") as rec:
            a = ht.input_tensor((4, 4), name="a")
            at = F.transpose(a)
            F.exp(at)
        assert "foldable-transpose" not in rules(lint_graph(rec.graph))

    def test_short_reduction(self):
        with ht.record(mode="symbolic") as rec:
            x = ht.input_tensor((1024, 8), name="x")
            F.sum(x, axis=-1)
        assert "short-reduction" in rules(lint_graph(rec.graph))

    def test_long_reduction_ok(self):
        with ht.record(mode="symbolic") as rec:
            x = ht.input_tensor((8, 2048), name="x")
            F.sum(x, axis=-1)
        assert "short-reduction" not in rules(lint_graph(rec.graph))

    def test_tpc_heavy_balance(self):
        with ht.record(mode="symbolic") as rec:
            x = ht.input_tensor((1 << 16,), name="x")
            for _ in range(4):
                x = F.exp(x)
        assert "tpc-heavy" in rules(lint_graph(rec.graph))

    def test_dead_value(self):
        with ht.record(mode="symbolic") as rec:
            x = ht.input_tensor((8,), name="x")
            F.exp(x)       # used downstream
            F.relu(x)      # dead
            F.tanh(x)      # dead
        warnings = [w for w in lint_graph(rec.graph) if w.rule == "dead-value"]
        assert warnings

    def test_render(self):
        with ht.record(mode="symbolic") as rec:
            F.glu(ht.input_tensor((4, 8), name="x"))
        text = render_warnings(lint_graph(rec.graph))
        assert "finding" in text and "recompile" in text


class TestTransposeKernel:
    @pytest.fixture(scope="class")
    def sim(self):
        return TPCSimulator()

    def test_matches_numpy(self, sim):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(37, 53)).astype(np.float32)
        r = sim.launch(REGISTRY.create("transpose2d"), {"x": x})
        np.testing.assert_array_equal(r.outputs["y"], x.T)

    def test_exact_tile_multiple(self, sim):
        x = np.arange(128 * 64, dtype=np.float32).reshape(128, 64)
        r = sim.launch(REGISTRY.create("transpose2d"), {"x": x})
        np.testing.assert_array_equal(r.outputs["y"], x.T)

    def test_costs_copy_order_via_local_staging(self, sim):
        # staged through local memory, a tiled transpose costs the same
        # order as a streaming copy (here: relu over the same bytes)
        n = 1 << 10
        t = sim.launch(REGISTRY.create("transpose2d"),
                       shapes={"x": (n, n)}).time_us
        c = sim.launch(REGISTRY.create("unary_relu"),
                       shapes={"x": (n * n,)}).time_us
        assert 0.3 * c < t < 3.0 * c


class TestGatherKernel:
    @pytest.fixture(scope="class")
    def sim(self):
        return TPCSimulator()

    def test_matches_numpy(self, sim):
        rng = np.random.default_rng(1)
        table = rng.normal(size=(50, 16)).astype(np.float32)
        idx = rng.integers(0, 50, size=23)
        r = sim.launch(REGISTRY.create("gather_rows"),
                       {"table": table, "idx": idx})
        np.testing.assert_array_equal(r.outputs["y"], table[idx])

    def test_timing_scales_with_lookups(self, sim):
        k = REGISTRY.create("gather_rows")
        small = sim.launch(k, shapes={"table": (1000, 512), "idx": (1024,)})
        big = sim.launch(k, shapes={"table": (1000, 512), "idx": (8192,)})
        assert big.time_us > 4 * small.time_us
