"""The hierarchical multi-box fabric: TwoTierFabric + two-tier plans.

PR-8's tentpole contract, from the wire up:

* :class:`~repro.hw.bandwidth.TwoTierFabric` routes intra-box traffic
  through one shared pool and inter-box traffic through a second,
  independent pool — tiers never contend with each other, and
  ``busy_us`` is the interval *union* (overlap counted once);
* intra-only traffic through the two-tier fabric drains exactly as it
  would through the flat :class:`~repro.hw.bandwidth.BandwidthArbiter`;
* :func:`~repro.hw.interconnect.hierarchical_collective_plan` with
  ``boxes=1`` returns the flat plan *verbatim* (FP arithmetic is not
  associative — only the identical plan replays byte-identically), and
  with ``boxes>1`` its analytic time is exactly the replayed step sum;
* at the runtime layer, ``boxes=1`` populations trace byte-identically
  to the flat HLS-1 runtime, and the scalar/vector fluid engines stay
  bit-for-bit equal on multi-box populations (hypothesis properties).
"""

import dataclasses
import math

from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.hw.bandwidth import BandwidthArbiter, TwoTierFabric
from repro.hw.config import HLS1Config, InterconnectConfig
from repro.hw.device import HLS1Device
from repro.hw.interconnect import (
    collective_plan,
    hierarchical_collective_plan,
    p2p_plan,
    scale_plan,
)
from repro.synapse import (
    GraphCompiler,
    HLS1Runtime,
    default_compiler_options,
)
from repro.synapse.runtime import collective_plans

CFG = InterconnectConfig()
GIB = float(1 << 30)


def record_step(width, depth, batch):
    lins = [ht.Linear(width, width, materialize=False) for _ in range(depth)]
    with ht.record("fabric-prop", mode="symbolic") as rec:
        h = ht.input_tensor((batch, width), name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


def compile_step(graph, bucket_mb=25.0, **overrides):
    options = dataclasses.replace(
        default_compiler_options(),
        inject_collectives=True,
        bucket_mb=bucket_mb,
        **overrides,
    )
    return GraphCompiler(options=options).compile(graph)


def drain_all(pool):
    """Run a fabric/arbiter to quiescence; completion (key, time) list."""
    done = []
    while pool.active:
        t, keys = pool.drain_until([])
        done.extend((k, t) for k in sorted(keys))
    return done


class TestTwoTierFabric:
    def test_intra_tier_matches_flat_arbiter(self):
        """Intra-only traffic is byte-identical to the flat pool."""
        flat = BandwidthArbiter(10 * GIB, shared=True)
        two = TwoTierFabric(10 * GIB, 1 * GIB)
        for pool in (flat, two):
            pool.admit(1, 4 * GIB, 0.0)
            pool.admit(2, 2 * GIB, 100.0)
        assert drain_all(flat) == drain_all(two)
        flat_busy = sum(
            seg.end_us - seg.start_us for seg in flat.rate_log
            if seg.total_rate > 0
        )
        assert two.busy_us() == flat_busy

    def test_tiers_do_not_contend(self):
        """One drainer per tier: each gets its full pool bandwidth."""
        two = TwoTierFabric(10 * GIB, 10 * GIB)
        two.admit(1, 10 * GIB, 0.0)
        two.admit(2, 10 * GIB, 0.0, tier="inter")
        done = dict(drain_all(two))
        # both finish in 1 s; sharing one pool would take 2 s each
        assert done[1] == done[2]
        assert math.isclose(done[1], 1e6)

    def test_busy_us_is_interval_union(self):
        """Concurrent tiers count wall time once, not twice."""
        two = TwoTierFabric(10 * GIB, 10 * GIB)
        two.admit(1, 10 * GIB, 0.0)
        two.admit(2, 10 * GIB, 0.0, tier="inter")
        drain_all(two)
        assert math.isclose(two.busy_us(), 1e6)

    def test_advance_concatenates_completions(self):
        two = TwoTierFabric(10 * GIB, 10 * GIB)
        two.admit(1, 1 * GIB, 0.0)
        two.admit(2, 1 * GIB, 0.0, tier="inter")
        assert sorted(two.advance(1e6)) == [1, 2]
        assert two.active == 0


class TestHierarchicalPlans:
    @given(
        st.sampled_from(["all_reduce", "all_gather", "broadcast",
                         "reduce_scatter"]),
        st.sampled_from([2, 4, 8]),
        st.integers(1, 1 << 24),
    )
    @settings(max_examples=20, deadline=None)
    def test_boxes_one_is_the_flat_plan_verbatim(self, op, cards, payload):
        flat = collective_plan(op, cards, payload, CFG)
        hier = hierarchical_collective_plan(op, 1, cards, payload, CFG)
        assert hier == flat
        assert all(s.tier == "intra" for s in hier.steps)

    @given(
        st.sampled_from(["all_reduce", "all_gather", "broadcast",
                         "reduce_scatter"]),
        st.sampled_from([2, 4, 8]),
        st.sampled_from([2, 4, 8]),
        st.integers(1, 1 << 24),
    )
    @settings(max_examples=20, deadline=None)
    def test_multi_box_analytic_is_exact_replay_sum(
        self, op, boxes, cards, payload
    ):
        plan = hierarchical_collective_plan(op, boxes, cards, payload, CFG)
        # satellite (b): the closed form IS the replayed sum — exact
        # equality, not a tolerance band
        assert plan.analytic_time_us == plan.replay_time_us()
        assert any(s.tier == "inter" for s in plan.steps)
        assert plan.inter_rate_cap > 0

    def test_multi_box_is_slower_than_flat(self):
        """Ethernet hops cost more than staying on the in-box links."""
        payload = 64 << 20
        flat = collective_plan("all_reduce", 32, payload, CFG)
        hier = hierarchical_collective_plan("all_reduce", 4, 8, payload, CFG)
        assert hier.analytic_time_us > flat.analytic_time_us

    def test_p2p_plan_tiers(self):
        intra = p2p_plan(1 << 20, CFG)
        inter = p2p_plan(1 << 20, CFG, inter=True)
        assert all(s.tier == "intra" for s in intra.steps)
        assert any(s.tier == "inter" for s in inter.steps)
        assert inter.analytic_time_us > intra.analytic_time_us

    def test_scale_plan_degenerate_is_object_identical(self):
        plan = collective_plan("all_reduce", 4, 1 << 20, CFG)
        assert scale_plan(plan, 1) is plan
        wide = scale_plan(plan, 4)
        assert wide is not plan
        assert wide.analytic_time_us == plan.analytic_time_us


class TestRuntimeBoxesOne:
    """The runtime-level byte-identity half of satellite (c)."""

    width_st = st.integers(4, 24)
    depth_st = st.integers(1, 3)
    batch_st = st.integers(2, 6)
    cards_st = st.sampled_from([2, 4, 8])
    bucket_st = st.sampled_from([0.01, 25.0])

    @staticmethod
    def _trace_key(ev):
        return (ev.name, ev.engine.value, ev.start_us, ev.dur_us, ev.card)

    @given(width_st, depth_st, batch_st, cards_st, bucket_st)
    @settings(max_examples=15, deadline=None)
    def test_boxes_one_trace_byte_identical_to_flat(
        self, width, depth, batch, cards, bucket_mb
    ):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb)
        flat = HLS1Runtime(
            HLS1Device(HLS1Config(num_cards=cards))
        ).execute(schedule)
        hier = HLS1Runtime(
            HLS1Device(HLS1Config(num_cards=cards, boxes=1))
        ).execute(schedule)
        assert flat.timeline.events == hier.timeline.events
        assert flat.total_time_us == hier.total_time_us
        assert flat.exposed_comm_us == hier.exposed_comm_us
        assert flat.fabric_busy_us == hier.fabric_busy_us

    @given(width_st, depth_st, batch_st, cards_st, bucket_st)
    @settings(max_examples=15, deadline=None)
    def test_collective_plans_boxes_one_identical(
        self, width, depth, batch, cards, bucket_mb
    ):
        schedule = compile_step(record_step(width, depth, batch), bucket_mb)
        flat = collective_plans(schedule, cards, CFG)
        hier = collective_plans(schedule, cards, CFG, boxes=1)
        assert flat == hier

    @given(width_st, depth_st, batch_st,
           st.sampled_from([2, 4]), st.sampled_from([2, 4]), bucket_st)
    @settings(max_examples=10, deadline=None)
    def test_multi_box_engines_byte_identical(
        self, width, depth, batch, boxes, cards, bucket_mb
    ):
        """Scalar and vector fluid engines agree on the two-tier fabric."""
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb)
        results = {}
        for engine in ("scalar", "vector"):
            system = HLS1Device(HLS1Config(num_cards=cards, boxes=boxes))
            results[engine] = HLS1Runtime(system).execute(
                schedule, engine=engine
            )
        assert (results["scalar"].timeline.events
                == results["vector"].timeline.events)
        assert (results["scalar"].total_time_us
                == results["vector"].total_time_us)
        assert (results["scalar"].fabric_busy_us
                == results["vector"].fabric_busy_us)

    @given(width_st, depth_st, batch_st, st.sampled_from([2, 4]), bucket_st)
    @settings(max_examples=10, deadline=None)
    def test_multi_box_never_faster_than_single_box(
        self, width, depth, batch, boxes, bucket_mb
    ):
        """Spanning Ethernet can only add communication time."""
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb)
        one = HLS1Runtime(
            HLS1Device(HLS1Config(num_cards=4, boxes=1))
        ).execute(schedule)
        multi = HLS1Runtime(
            HLS1Device(HLS1Config(num_cards=4, boxes=boxes))
        ).execute(schedule)
        assert multi.total_time_us >= one.total_time_us - 1e-9
