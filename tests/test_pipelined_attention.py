"""Tests for pipelined exact attention (A6) and compiler view elision."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.core import run_pipelined_attention_study
from repro.models import AttentionConfig, SoftmaxAttention
from repro.models.attention import PipelinedSoftmaxAttention
from repro.synapse import CompilerOptions, GraphCompiler
from repro.util.errors import ShapeError


def paired_attentions(causal=False, chunk=4):
    cfg = AttentionConfig(num_heads=2, head_dim=4, kind="pipelined",
                          chunk_size=chunk, causal=causal)
    rng_seed = 5
    pl = PipelinedSoftmaxAttention(cfg, rng=np.random.default_rng(rng_seed))
    sm = SoftmaxAttention(cfg, rng=np.random.default_rng(rng_seed))
    return pl, sm


class TestExactness:
    """The extension's defining property: identical math to softmax."""

    def test_matches_softmax_attention_exactly(self):
        pl, sm = paired_attentions()
        x = np.random.default_rng(0).normal(size=(2, 8, 8))
        with ht.record():
            a = pl(ht.tensor(x)).numpy()
            b = sm(ht.tensor(x)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_causal_matches_too(self):
        pl, sm = paired_attentions(causal=True)
        x = np.random.default_rng(1).normal(size=(2, 8, 8))
        with ht.record():
            a = pl(ht.tensor(x)).numpy()
            b = sm(ht.tensor(x)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_single_chunk_degenerates_gracefully(self):
        pl, sm = paired_attentions(chunk=8)  # one chunk covers all rows
        x = np.random.default_rng(2).normal(size=(1, 8, 8))
        with ht.record():
            a = pl(ht.tensor(x)).numpy()
            b = sm(ht.tensor(x)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_indivisible_length_rejected(self):
        pl, _ = paired_attentions(chunk=4)
        with ht.record():
            with pytest.raises(ShapeError, match="divisible"):
                pl(ht.randn(1, 6, 8))

    def test_gradients_flow(self):
        pl, _ = paired_attentions()
        with ht.record():
            x = ht.tensor(
                np.random.default_rng(3).normal(size=(2, 8, 8)),
                requires_grad=True,
            )
            F.mean(F.square(pl(x))).backward()
            assert x.grad is not None
            assert np.isfinite(x.grad.numpy()).all()

    def test_gradcheck_through_chunks(self):
        pl, sm = paired_attentions()
        x0 = np.random.default_rng(4).normal(size=(1, 8, 8))

        def grad_of(module):
            with ht.record():
                x = ht.tensor(x0, requires_grad=True)
                F.mean(F.square(module(x))).backward()
                return x.grad.numpy().copy()

        np.testing.assert_allclose(grad_of(pl), grad_of(sm), rtol=1e-4,
                                   atol=1e-5)


class TestViewElision:
    def test_views_not_scheduled(self):
        with ht.record("v", mode="symbolic") as rec:
            x = ht.input_tensor((8, 16), name="x")
            r = F.reshape(x, (4, 32))
            s = F.slice_rows(r, 0, 2)
            F.exp(s)
        schedule = GraphCompiler().compile(rec.graph)
        labels = [op.label for op in schedule.ops]
        assert not any("reshape" in l or "slice_rows" in l for l in labels)

    def test_elision_can_be_disabled(self):
        with ht.record("v", mode="symbolic") as rec:
            x = ht.input_tensor((8, 16), name="x")
            F.exp(F.reshape(x, (128,)))
        schedule = GraphCompiler(
            options=CompilerOptions(elide_views=False)
        ).compile(rec.graph)
        assert any("reshape" in op.label for op in schedule.ops)

    def test_dependencies_resolve_through_views(self):
        with ht.record("v", mode="symbolic") as rec:
            a = ht.input_tensor((4, 4), name="a")
            h = F.exp(a)                      # producer (MME-crossing
            v = F.reshape(h, (4, 4))          # view (elided)
            F.matmul(v, a)                    # consumer on the MME
        schedule = GraphCompiler().compile(rec.graph)
        mm_op = next(op for op in schedule.ops if "matmul" in op.label)
        exp_op = next(op for op in schedule.ops if "exp" in op.label)
        # the matmul depends on exp through the elided view (via the
        # inserted DMA staging op)
        reachable = set(mm_op.deps)
        frontier = list(mm_op.deps)
        while frontier:
            idx = frontier.pop()
            for d in schedule.ops[idx].deps:
                if d not in reachable:
                    reachable.add(d)
                    frontier.append(d)
        assert exp_op.index in reachable

    def test_elision_enables_fusion_through_views(self):
        with ht.record("v", mode="symbolic") as rec:
            a = ht.input_tensor((4, 4), name="a")
            F.relu(F.reshape(F.exp(a), (16,)))
        schedule = GraphCompiler().compile(rec.graph)
        assert len(schedule.ops) == 1
        assert schedule.ops[0].is_fused

    def test_transpose_still_scheduled(self):
        # transpose moves data; it must NOT be elided
        with ht.record("v", mode="symbolic") as rec:
            x = ht.input_tensor((8, 16), name="x")
            F.exp(F.transpose(x))
        schedule = GraphCompiler().compile(rec.graph)
        assert any("transpose" in op.label for op in schedule.ops)

    def test_semantics_preserved_with_elision(self):
        from repro.synapse import execute_schedule

        rng = np.random.default_rng(6)
        arr = rng.normal(size=(6, 8)).astype(np.float32)
        with ht.record(mode="concrete") as rec:
            x = ht.tensor(arr, name="x")
            out = F.relu(F.slice_rows(F.reshape(x, (8, 6)), 2, 6))
            eager = out.numpy()
        schedule = GraphCompiler().compile(rec.graph)
        replay = execute_schedule(schedule, {"x": arr})
        final = schedule.graph.nodes[-1].output
        np.testing.assert_allclose(replay[final], eager, rtol=1e-6)


class TestPipelinedStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pipelined_attention_study()

    def test_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_meaningful_speedup(self, result):
        assert result.speedup > 1.2

    def test_render(self, result):
        text = result.render()
        assert "pipelined" in text and "monolithic" in text
