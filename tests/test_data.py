"""Tests for the synthetic corpus, tokenizer, and batchers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    CorpusConfig,
    SyntheticBookCorpus,
    WordTokenizer,
    make_clm_batch,
    make_mlm_batch,
    pack_blocks,
)
from repro.data.tokenizer import MASK, PAD, SPECIAL_TOKENS
from repro.util.errors import DataError


@pytest.fixture(scope="module")
def corpus():
    return SyntheticBookCorpus(CorpusConfig(
        vocab_words=500, num_books=2, sentences_per_book=50,
    ))


@pytest.fixture(scope="module")
def tokenizer(corpus):
    return WordTokenizer.train(corpus, max_vocab=400)


class TestCorpus:
    def test_deterministic(self):
        cfg = CorpusConfig(vocab_words=100, num_books=1, sentences_per_book=5)
        a = SyntheticBookCorpus(cfg).books()
        b = SyntheticBookCorpus(cfg).books()
        assert a == b

    def test_different_seed_differs(self):
        a = SyntheticBookCorpus(CorpusConfig(seed=1)).books()[0][0]
        b = SyntheticBookCorpus(CorpusConfig(seed=2)).books()[0][0]
        assert a != b

    def test_structure(self, corpus):
        books = corpus.books()
        assert len(books) == 2
        assert all(len(book) == 50 for book in books)
        assert all(s.endswith(" .") for s in books[0])

    def test_zipf_like_frequencies(self, corpus):
        """Most frequent word should dominate, as in natural text."""
        from collections import Counter

        counts = Counter(corpus.token_stream())
        counts.pop(".", None)
        freqs = [c for _, c in counts.most_common()]
        assert freqs[0] > 4 * freqs[min(20, len(freqs) - 1)]

    def test_invalid_configs(self):
        with pytest.raises(DataError):
            CorpusConfig(vocab_words=5)
        with pytest.raises(DataError):
            CorpusConfig(zipf_exponent=1.0)
        with pytest.raises(DataError):
            CorpusConfig(num_books=0)


class TestTokenizer:
    def test_specials_present_and_first(self, tokenizer):
        assert tokenizer.id_to_token[: len(SPECIAL_TOKENS)] == list(SPECIAL_TOKENS)
        assert tokenizer.pad_id == 0

    def test_round_trip(self, tokenizer, corpus):
        sentence = corpus.books()[0][0]
        ids = tokenizer.encode(sentence)
        decoded = tokenizer.decode(ids)
        # round-trips exactly when no word was OOV
        if tokenizer.unk_id not in ids:
            assert decoded == sentence

    def test_unknown_maps_to_unk(self, tokenizer):
        ids = tokenizer.encode("xyzzyplugh")
        assert ids == [tokenizer.unk_id]

    def test_add_specials(self, tokenizer):
        ids = tokenizer.encode("a", add_specials=True)
        assert ids[0] == tokenizer.cls_id and ids[-1] == tokenizer.sep_id

    def test_decode_skips_specials(self, tokenizer):
        text = tokenizer.decode([tokenizer.cls_id, tokenizer.unk_id,
                                 tokenizer.sep_id], skip_specials=True)
        assert PAD not in text and "[CLS]" not in text

    def test_decode_range_check(self, tokenizer):
        with pytest.raises(DataError):
            tokenizer.decode([10**6])

    def test_max_vocab_respected(self, corpus):
        tok = WordTokenizer.train(corpus, max_vocab=50)
        assert tok.vocab_size == 50

    def test_min_freq(self, corpus):
        tok_all = WordTokenizer.train(corpus, max_vocab=10_000, min_freq=1)
        tok_freq = WordTokenizer.train(corpus, max_vocab=10_000, min_freq=5)
        assert tok_freq.vocab_size < tok_all.vocab_size

    def test_duplicate_vocab_rejected(self):
        with pytest.raises(DataError):
            WordTokenizer(list(SPECIAL_TOKENS) + ["a", "a"])

    def test_missing_special_rejected(self):
        with pytest.raises(DataError, match="missing special"):
            WordTokenizer(["a", "b"])

    def test_save_load_round_trip(self, tokenizer, tmp_path):
        path = tokenizer.save(tmp_path / "tok.json")
        loaded = WordTokenizer.load(path)
        assert loaded.id_to_token == tokenizer.id_to_token
        assert loaded.encode("a b c") == tokenizer.encode("a b c")

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(DataError, match="not a saved tokenizer"):
            WordTokenizer.load(bad)
        with pytest.raises(DataError, match="cannot load"):
            WordTokenizer.load(tmp_path / "missing.json")


class TestPackBlocks:
    def test_shape(self):
        out = pack_blocks(list(range(100)), seq_len=8, batch_size=4)
        assert out.shape == (4, 8)
        np.testing.assert_array_equal(out.reshape(-1), np.arange(32))

    def test_cycles_short_stream(self):
        out = pack_blocks([1, 2, 3], seq_len=4, batch_size=2)
        assert out.shape == (2, 4)
        np.testing.assert_array_equal(out.reshape(-1),
                                      [1, 2, 3, 1, 2, 3, 1, 2])

    def test_validation(self):
        with pytest.raises(DataError):
            pack_blocks([], 4, 2)
        with pytest.raises(DataError):
            pack_blocks([1], 0, 2)


class TestMLMBatch:
    def test_mask_rate_and_targets(self, tokenizer):
        rng = np.random.default_rng(0)
        blocks = rng.integers(5, tokenizer.vocab_size, size=(8, 128))
        batch = make_mlm_batch(blocks, tokenizer, mask_prob=0.15, rng=rng)
        rate = batch.masked_positions.mean()
        assert 0.10 < rate < 0.20
        # one-hot rows exist exactly at masked positions
        row_sums = batch.target_onehot.sum(-1)
        np.testing.assert_array_equal(row_sums > 0, batch.masked_positions)
        # targets recover the ORIGINAL token, not the corrupted one
        rows, cols = np.nonzero(batch.masked_positions)
        recovered = batch.target_onehot[rows, cols].argmax(-1)
        np.testing.assert_array_equal(recovered, blocks[rows, cols])

    def test_eighty_percent_mask_token(self, tokenizer):
        rng = np.random.default_rng(1)
        blocks = rng.integers(5, tokenizer.vocab_size, size=(16, 256))
        batch = make_mlm_batch(blocks, tokenizer, rng=rng)
        masked_inputs = batch.input_ids[batch.masked_positions]
        frac_mask_tok = (masked_inputs == tokenizer.mask_id).mean()
        assert 0.7 < frac_mask_tok < 0.9

    def test_at_least_one_target(self, tokenizer):
        rng = np.random.default_rng(2)
        blocks = np.full((1, 4), 7)
        batch = make_mlm_batch(blocks, tokenizer, mask_prob=0.01, rng=rng)
        assert batch.masked_positions.any()

    def test_bad_prob(self, tokenizer):
        with pytest.raises(DataError):
            make_mlm_batch(np.zeros((1, 4), dtype=int), tokenizer, mask_prob=0.0)


class TestCLMBatch:
    def test_shifted_targets(self):
        blocks = np.array([[3, 1, 4, 1]])
        batch = make_clm_batch(blocks, vocab_size=6)
        assert batch.target_onehot.shape == (1, 4, 6)
        np.testing.assert_array_equal(
            batch.target_onehot[0, :3].argmax(-1), [1, 4, 1]
        )
        # final position has no target
        assert batch.target_onehot[0, 3].sum() == 0

    def test_vocab_range_checked(self):
        with pytest.raises(DataError):
            make_clm_batch(np.array([[9]]), vocab_size=5)

    @given(st.integers(2, 32), st.integers(2, 16), st.integers(5, 40))
    @settings(max_examples=20, deadline=None)
    def test_onehot_consistency(self, b, n, v):
        rng = np.random.default_rng(b * n * v)
        blocks = rng.integers(0, v, size=(b, n))
        batch = make_clm_batch(blocks, vocab_size=v)
        # every non-final position points at the next token
        for i in range(b):
            for t in range(n - 1):
                assert batch.target_onehot[i, t].argmax() == blocks[i, t + 1]
