"""Unit tests for the TPC VLIW ISA model and index spaces."""

import pytest
from hypothesis import given, strategies as st

from repro.tpc import (
    Bundle,
    IndexSpace,
    InstructionStream,
    Slot,
    SlotOp,
    balance_ratio,
    partition_members,
    spu,
    vload_global,
    vload_global_streamed,
    vload_local,
    vpu,
    vstore_global,
)
from repro.util.errors import KernelError


class TestSlotOps:
    def test_four_slots(self):
        # Paper section 2.2: Load, SPU, VPU, Store slots.
        assert {s.value for s in Slot} == {"load", "spu", "vpu", "store"}

    def test_global_load_costs_four_cycles(self):
        # "every four cycles can accommodate the loading or writing of
        # a 2048-bit vector to the global memory"
        b = Bundle((vload_global(),))
        assert b.cycles == 4.0

    def test_local_load_single_cycle(self):
        # "unrestricted bandwidth when reading from or writing to the
        # local memory in each cycle"
        assert Bundle((vload_local(),)).cycles == 1.0

    def test_streamed_load_free(self):
        assert Bundle((vload_global_streamed(),)).cycles == 1.0

    def test_negative_stall_rejected(self):
        with pytest.raises(KernelError):
            SlotOp(Slot.VPU, "bad", stall_cycles=-1.0)


class TestBundle:
    def test_parallel_slots_issue_together(self):
        b = Bundle((vpu("mac"), vload_global_streamed(), spu("loop")))
        assert b.cycles == 1.0

    def test_slowest_slot_determines_retire(self):
        b = Bundle((vpu("exp", stall_cycles=11.0), vstore_global()))
        assert b.cycles == 12.0

    def test_same_slot_twice_rejected(self):
        with pytest.raises(KernelError, match="slot"):
            Bundle((vpu("a"), vpu("b")))

    def test_repeat(self):
        b = Bundle((vpu("mac"),), repeat=10)
        assert b.total_cycles == 10.0

    def test_zero_repeat_rejected(self):
        with pytest.raises(KernelError):
            Bundle((), repeat=0)


class TestInstructionStream:
    def test_cycles_sum(self):
        s = InstructionStream()
        s.emit(vload_global())       # 4
        s.emit(vpu("mac"), repeat=8)  # 8
        assert s.cycles == 12.0

    def test_slot_counts(self):
        s = InstructionStream()
        s.emit(vpu("mac"), vload_global_streamed(), repeat=5)
        s.emit(spu("x"))
        counts = s.slot_counts()
        assert counts[Slot.VPU] == 5
        assert counts[Slot.LOAD] == 5
        assert counts[Slot.SPU] == 1
        assert counts[Slot.STORE] == 0

    def test_slot_utilization(self):
        s = InstructionStream()
        s.emit(vpu("a"), spu("b"))  # 2 of 4 slots
        assert s.slot_utilization() == pytest.approx(0.5)

    def test_empty_stream(self):
        s = InstructionStream()
        assert s.cycles == 0.0
        assert s.slot_utilization() == 0.0


class TestIndexSpace:
    def test_size(self):
        assert IndexSpace((4, 8)).size == 32

    def test_rank_bounds(self):
        IndexSpace((1,))
        IndexSpace((1, 1, 1, 1, 1))
        with pytest.raises(KernelError):
            IndexSpace(())
        with pytest.raises(KernelError):
            IndexSpace((1,) * 6)

    def test_positive_dims(self):
        with pytest.raises(KernelError):
            IndexSpace((0, 4))

    def test_members_row_major(self):
        assert list(IndexSpace((2, 2)).members()) == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]

    def test_member_at_matches_iteration(self):
        space = IndexSpace((3, 4, 2))
        for flat, member in enumerate(space.members()):
            assert space.member_at(flat) == member

    def test_member_at_bounds(self):
        with pytest.raises(KernelError):
            IndexSpace((2,)).member_at(2)


class TestPartition:
    def test_even_partition(self):
        parts = partition_members(IndexSpace((16,)), 8)
        assert [len(p) for p in parts] == [2] * 8

    def test_uneven_partition_balanced_within_one(self):
        parts = partition_members(IndexSpace((10,)), 8)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_partition_is_contiguous_and_complete(self):
        parts = partition_members(IndexSpace((7, 3)), 4)
        flat = [i for p in parts for i in p]
        assert flat == list(range(21))

    def test_bad_core_count(self):
        with pytest.raises(KernelError):
            partition_members(IndexSpace((4,)), 0)

    @given(st.integers(1, 200), st.integers(1, 16))
    def test_partition_properties(self, n, cores):
        parts = partition_members(IndexSpace((n,)), cores)
        assert len(parts) == cores
        sizes = [len(p) for p in parts]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestBalanceRatio:
    def test_perfect(self):
        assert balance_ratio([5.0, 5.0]) == 1.0

    def test_imbalanced(self):
        assert balance_ratio([10.0, 0.0]) == pytest.approx(0.5)

    def test_all_zero(self):
        assert balance_ratio([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(KernelError):
            balance_ratio([])
