"""Tests for the HBM occupancy timeline and model dropout plumbing."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.device import GaudiDevice
from repro.models import AttentionConfig, LayerConfig, TransformerLayer
from repro.synapse import (
    GraphCompiler,
    Runtime,
    memory_timeline,
)
from repro.util.errors import ConfigError, ExecutionError


def small_schedule():
    with ht.record("mem", mode="symbolic") as rec:
        a = ht.input_tensor((256, 256), name="a")
        b = ht.input_tensor((256, 256), name="b")
        s = F.softmax(F.matmul(a, b))
        F.matmul(s, b)
    return GraphCompiler().compile(rec.graph)


class TestMemoryTimeline:
    def test_peak_matches_planner(self):
        """The reconstructed curve must agree with the compile-time plan."""
        schedule = small_schedule()
        tl = memory_timeline(schedule)
        assert tl.peak_bytes == schedule.memory.peak_bytes

    def test_peak_matches_planner_on_training_graph(self):
        from repro.core import record_training_step

        rec = record_training_step("bert")
        schedule = GraphCompiler().compile(rec.graph)
        tl = memory_timeline(schedule)
        assert tl.peak_bytes == schedule.memory.peak_bytes

    def test_with_real_completion_times(self):
        schedule = small_schedule()
        result = Runtime(GaudiDevice()).execute(schedule)
        completion = [0.0] * len(schedule.ops)
        for idx, ev in zip(result.issue_order, result.timeline.events):
            completion[idx] = ev.end_us
        tl = memory_timeline(schedule, completion)
        times = [s.time_us for s in tl.samples]
        assert max(times) <= result.timeline.total_time_us + 1e-6
        assert tl.peak_bytes == schedule.memory.peak_bytes

    def test_length_mismatch_rejected(self):
        schedule = small_schedule()
        with pytest.raises(ExecutionError, match="completion times"):
            memory_timeline(schedule, [0.0])

    def test_live_never_below_persistent(self):
        schedule = small_schedule()
        tl = memory_timeline(schedule)
        assert all(s.live_bytes >= tl.persistent_bytes for s in tl.samples)

    def test_sparkline(self):
        schedule = small_schedule()
        tl = memory_timeline(schedule)
        art = tl.sparkline(width=40, capacity_bytes=1 << 30)
        assert "HBM" in art and "peak" in art and "cap" in art

    def test_utilization_of(self):
        schedule = small_schedule()
        tl = memory_timeline(schedule)
        assert 0 < tl.utilization_of(1 << 40) < 1
        with pytest.raises(ExecutionError):
            tl.utilization_of(0)

    def test_peak_sample_identifies_op(self):
        schedule = small_schedule()
        tl = memory_timeline(schedule)
        peak = tl.peak_sample()
        assert peak is not None
        assert peak.live_bytes == tl.peak_bytes


class TestModelDropout:
    def make_layer(self, p):
        cfg = LayerConfig(
            attention=AttentionConfig(num_heads=2, head_dim=4),
            ffn_mult=2, dropout_p=p,
        )
        return TransformerLayer(cfg, rng=np.random.default_rng(0))

    def test_default_records_no_dropout(self):
        layer = self.make_layer(0.0)
        with ht.record() as rec:
            layer(ht.randn(2, 4, 8))
        assert not any(n.op == "dropout" for n in rec.graph.nodes)

    def test_positive_p_records_dropout_ops(self):
        layer = self.make_layer(0.1)
        with ht.record() as rec:
            layer(ht.randn(2, 4, 8))
        drops = [n for n in rec.graph.nodes if n.op == "dropout"]
        assert len(drops) == 2  # attn residual + ffn residual

    def test_dropout_graph_still_differentiable(self):
        layer = self.make_layer(0.2)
        with ht.record():
            x = ht.tensor(
                np.random.default_rng(1).normal(size=(2, 4, 8)),
                requires_grad=True,
            )
            loss = F.mean(F.square(layer(x)))
            loss.backward()
            assert x.grad is not None
            assert np.isfinite(x.grad.numpy()).all()

    def test_dropout_increases_profiled_tpc_work(self):
        from repro.synapse import SynapseProfiler
        from repro.hw.costmodel import EngineKind

        def tpc_busy(p):
            cfg = LayerConfig(
                attention=AttentionConfig(num_heads=2, head_dim=32),
                ffn_mult=2, dropout_p=p,
            )
            layer = TransformerLayer(cfg, materialize=False)
            with ht.record(mode="symbolic") as rec:
                layer(ht.input_tensor((8, 256, 64)))
            res = SynapseProfiler().profile(rec.graph)
            return res.timeline.busy_time_us(EngineKind.TPC)

        assert tpc_busy(0.1) > tpc_busy(0.0)

    def test_invalid_dropout_p_rejected(self):
        with pytest.raises(ConfigError):
            LayerConfig(
                attention=AttentionConfig(num_heads=2, head_dim=4),
                dropout_p=1.0,
            )
