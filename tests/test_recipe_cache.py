"""The recipe cache: signature keying, hits/misses, and e2e reuse.

SynapseAI compiles a graph once and replays the recipe; the cache
reproduces that. These tests pin the keying contract (structure,
shapes, dtypes, attrs, and compile-relevant options change the key;
runtime-only options do not), the LRU behaviour, and the end-to-end
consequence: iteration 1 of a training loop pays the compile penalty,
steady-state iterations do not, and a cached compile yields a timeline
identical to a fresh one.
"""

import numpy as np

from repro import ht
from repro.core.e2e_llm import record_training_step
from repro.ht import functional as F
from repro.hw.config import GaudiConfig
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    RecipeCache,
    SynapseProfiler,
    graph_signature,
    recipe_key,
)


def record_program(scale=1.0, rows=4, name="prog"):
    with ht.record(name, mode="concrete") as rec:
        a = ht.tensor(np.ones((rows, 6), dtype=np.float32), name="a")
        b = ht.tensor(np.ones((6, 8), dtype=np.float32), name="b")
        x = F.matmul(a, b)
        x = F.softmax(F.mul_scalar(x, scale), axis=-1)
        F.mean(x)
    return rec


class TestGraphSignature:
    def test_same_program_same_signature(self):
        assert (record_program().graph_signature()
                == record_program().graph_signature())

    def test_shape_changes_signature(self):
        assert (record_program(rows=4).graph_signature()
                != record_program(rows=5).graph_signature())

    def test_attr_changes_signature(self):
        assert (record_program(scale=1.0).graph_signature()
                != record_program(scale=2.0).graph_signature())

    def test_name_changes_signature(self):
        assert (record_program(name="x").graph_signature()
                != record_program(name="y").graph_signature())

    def test_recorder_method_matches_function(self):
        rec = record_program()
        assert rec.graph_signature() == graph_signature(rec.graph)


class TestRecipeKey:
    def test_compile_option_changes_key(self):
        graph = record_program().graph
        config = GaudiConfig()
        assert (
            recipe_key(graph, config, CompilerOptions())
            != recipe_key(graph, config,
                          CompilerOptions(fuse_elementwise=False))
        )

    def test_runtime_only_options_do_not_change_key(self):
        graph = record_program().graph
        config = GaudiConfig()
        base = recipe_key(graph, config, CompilerOptions())
        assert base == recipe_key(graph, config,
                                  CompilerOptions(reorder=True))
        assert base == recipe_key(graph, config,
                                  CompilerOptions(use_recipe_cache=False))


class TestCompilerCaching:
    def test_recompile_same_graph_hits(self):
        compiler = GraphCompiler()
        first = compiler.compile(record_program().graph)
        assert compiler.last_cache_hit is False
        second = compiler.compile(record_program().graph)
        assert compiler.last_cache_hit is True
        # a hit replays the recipe as a private clone, never the cached
        # object itself (callers may mutate what they get back)
        assert second is not first
        assert [op.label for op in second.ops] == [op.label for op in first.ops]
        assert second.stats["passes"] == first.stats["passes"]
        assert compiler.cache.hits == 1 and compiler.cache.misses == 1

    def test_changed_graph_misses(self):
        compiler = GraphCompiler()
        compiler.compile(record_program(rows=4).graph)
        compiler.compile(record_program(rows=5).graph)
        assert compiler.last_cache_hit is False
        assert len(compiler.cache) == 2

    def test_cache_disabled_never_hits(self):
        compiler = GraphCompiler(
            options=CompilerOptions(use_recipe_cache=False)
        )
        compiler.compile(record_program().graph)
        compiler.compile(record_program().graph)
        assert compiler.last_cache_hit is False
        assert len(compiler.cache) == 0

    def test_caches_are_per_compiler(self):
        """A fresh compiler re-pays compilation (recipes are per
        process in SynapseAI, per compiler instance here)."""
        GraphCompiler().compile(record_program().graph)
        fresh = GraphCompiler()
        fresh.compile(record_program().graph)
        assert fresh.last_cache_hit is False

    def test_lru_eviction(self):
        compiler = GraphCompiler(cache=RecipeCache(maxsize=2))
        g1, g2, g3 = (record_program(rows=r).graph for r in (3, 4, 5))
        compiler.compile(g1)
        compiler.compile(g2)
        compiler.compile(g3)  # evicts g1
        assert len(compiler.cache) == 2
        compiler.compile(g1)
        assert compiler.last_cache_hit is False  # was evicted
        compiler.compile(g2)  # evicted by g1's re-insert
        assert compiler.last_cache_hit is False

    def test_hits_are_mutation_isolated(self):
        """Regression: the cache used to hand every hit the same
        Schedule object, so one caller mutating its schedule (stats,
        memory plan, op lists) silently poisoned every later hit."""
        compiler = GraphCompiler()
        graph = record_program().graph
        first = compiler.compile(graph)
        first.stats["passes"].append({"pass": "poisoned"})
        first.stats["poison"] = True
        first.memory.free_after[-1] = 123456
        first.ops[0].deps.append(999)
        dropped = first.ops.pop()
        second = compiler.compile(graph)
        assert compiler.last_cache_hit is True
        assert {"pass": "poisoned"} not in second.stats["passes"]
        assert "poison" not in second.stats
        assert -1 not in second.memory.free_after
        assert 999 not in second.ops[0].deps
        assert second.ops[-1].label == dropped.label

    def test_stored_schedule_not_aliased_by_compiler(self):
        """The object the compiler returns on a miss is the one it just
        stored — mutating it must not corrupt the cached recipe."""
        compiler = GraphCompiler()
        graph = record_program().graph
        miss = compiler.compile(graph)
        miss.ops.clear()
        hit = compiler.compile(graph)
        assert compiler.last_cache_hit is True
        assert len(hit.ops) > 0

    def test_cache_info_counters(self):
        cache = RecipeCache(maxsize=4)
        compiler = GraphCompiler(cache=cache)
        compiler.compile(record_program().graph)
        compiler.compile(record_program().graph)
        info = cache.info()
        assert info == {"hits": 1, "misses": 1, "disk_hits": 0,
                        "size": 1, "maxsize": 4, "save_dir": None}
        cache.clear()
        assert cache.info() == {"hits": 0, "misses": 0, "disk_hits": 0,
                                "size": 0, "maxsize": 4, "save_dir": None}


class TestProfilerIntegration:
    def test_profile_repeated_hits_after_first(self):
        profiler = SynapseProfiler()
        results = profiler.profile_repeated(record_program().graph, 3)
        assert results[0].cache_hit is False
        assert all(r.cache_hit for r in results[1:])
        assert profiler.compiler.cache.hits == 2

    def test_cached_e2e_gpt_step_timeline_identical(self):
        """Compiling the same GPT step from cache changes nothing."""
        profiler = SynapseProfiler()
        graph_a = record_training_step("gpt", batch=2, seq_len=128).graph
        graph_b = record_training_step("gpt", batch=2, seq_len=128).graph
        fresh = profiler.profile(graph_a)
        assert fresh.cache_hit is False
        cached = profiler.profile(graph_b)
        assert cached.cache_hit is True
        assert cached.total_time_us == fresh.total_time_us
        assert len(cached.timeline.events) == len(fresh.timeline.events)
        for ea, eb in zip(fresh.timeline.events, cached.timeline.events):
            assert (ea.name, ea.engine, ea.start_us, ea.dur_us) == (
                eb.name, eb.engine, eb.start_us, eb.dur_us)

    def test_per_pass_stats_survive_cached_compile(self):
        profiler = SynapseProfiler()
        graph = record_program().graph
        first = profiler.profile(graph)
        second = profiler.profile(graph)
        assert second.schedule.stats["passes"] == first.schedule.stats["passes"]
        assert [e["pass"] for e in second.schedule.stats["passes"]]


class TestDiskPersistence:
    """The on-disk recipe store: cross-process reuse, corruption, stats."""

    def _compile(self, cache):
        graph = record_program().graph
        compiler = GraphCompiler(cache=cache)
        schedule = compiler.compile(graph)
        return compiler, schedule

    def test_blob_written_on_put(self, tmp_path):
        cache = RecipeCache(save_dir=tmp_path)
        self._compile(cache)
        blobs = list(tmp_path.glob("*.json"))
        assert len(blobs) == 1

    def test_fresh_cache_hits_from_disk(self, tmp_path):
        _, first = self._compile(RecipeCache(save_dir=tmp_path))
        cache = RecipeCache(save_dir=tmp_path)
        compiler, second = self._compile(cache)
        assert compiler.last_cache_hit is True
        assert cache.disk_hits == 1 and cache.hits == 1
        assert len(second.ops) == len(first.ops)
        assert second.memory.peak_bytes == first.memory.peak_bytes

    def test_disk_recipe_executes_identically(self, tmp_path):
        from repro.hw.device import GaudiDevice
        from repro.synapse import Runtime

        _, first = self._compile(RecipeCache(save_dir=tmp_path))
        _, second = self._compile(RecipeCache(save_dir=tmp_path))
        a = Runtime(GaudiDevice()).execute(first, reorder=True)
        b = Runtime(GaudiDevice()).execute(second, reorder=True)
        assert a.total_time_us == b.total_time_us
        assert len(a.timeline.events) == len(b.timeline.events)

    def test_corrupt_blob_is_a_plain_miss(self, tmp_path):
        self._compile(RecipeCache(save_dir=tmp_path))
        blob = next(tmp_path.glob("*.json"))
        blob.write_text("{garbage")
        cache = RecipeCache(save_dir=tmp_path)
        compiler, _ = self._compile(cache)
        assert compiler.last_cache_hit is False
        assert cache.misses == 1 and cache.disk_hits == 0
        # the recompile republishes a valid blob over the corrupt one
        _, _ = self._compile(RecipeCache(save_dir=tmp_path))

    def test_memory_only_without_save_dir(self, tmp_path):
        cache = RecipeCache()
        assert cache.save_dir is None
        self._compile(cache)
        assert list(tmp_path.glob("*.json")) == []

    def test_process_default_dir(self, tmp_path):
        from repro.synapse import (
            default_recipe_cache_dir,
            set_default_recipe_cache_dir,
        )

        try:
            set_default_recipe_cache_dir(tmp_path)
            assert default_recipe_cache_dir() == tmp_path
            cache = RecipeCache()  # no explicit dir -> process default
            assert cache.save_dir == tmp_path
            self._compile(cache)
            assert len(list(tmp_path.glob("*.json"))) == 1
        finally:
            set_default_recipe_cache_dir(None)
        assert default_recipe_cache_dir() is None

    def test_global_stats_aggregate_across_caches(self, tmp_path):
        from repro.synapse import (
            recipe_cache_stats,
            reset_recipe_cache_stats,
        )

        reset_recipe_cache_stats()
        self._compile(RecipeCache(save_dir=tmp_path))
        self._compile(RecipeCache(save_dir=tmp_path))
        stats = recipe_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["disk_hits"] == 1
        reset_recipe_cache_stats()
        assert recipe_cache_stats() == {
            "hits": 0, "misses": 0, "disk_hits": 0,
        }

    def test_clear_keeps_disk(self, tmp_path):
        cache = RecipeCache(save_dir=tmp_path)
        self._compile(cache)
        cache.clear()
        assert len(cache) == 0
        assert len(list(tmp_path.glob("*.json"))) == 1
        compiler, _ = self._compile(cache)
        assert compiler.last_cache_hit is True  # reloaded from disk


def _race_worker(barrier, save_dir, results):
    """One racing sweep worker: compile + publish the same signature.

    Module-level so a forked process can run it; the barrier releases
    both workers into the compile simultaneously, so their
    ``_save_to_disk`` publications overlap.
    """
    graph = record_program().graph
    cache = RecipeCache(save_dir=save_dir)
    barrier.wait(timeout=30)
    compiler = GraphCompiler(cache=cache)
    schedule = compiler.compile(graph)
    results.put(len(schedule.ops))


class TestConcurrentPublish:
    """Racing ``--jobs`` workers publishing one disk-recipe blob."""

    def test_two_processes_racing_one_signature(self, tmp_path):
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(2)
        results = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_worker,
                args=(barrier, str(tmp_path), results),
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        ops = [results.get(timeout=5), results.get(timeout=5)]
        assert ops[0] == ops[1]

        # exactly one complete blob, no stale temp files left behind
        blobs = list(tmp_path.glob("*.json"))
        assert len(blobs) == 1
        assert not list(tmp_path.glob(".*.tmp"))

        # the published blob is complete: a third cache disk-hits it
        cache = RecipeCache(save_dir=tmp_path)
        compiler = GraphCompiler(cache=cache)
        schedule = compiler.compile(record_program().graph)
        assert compiler.last_cache_hit is True
        assert cache.disk_hits == 1
        assert len(schedule.ops) == ops[0]

    def test_identical_writer_skips_republication(self, tmp_path):
        cache = RecipeCache(save_dir=tmp_path)
        graph = record_program().graph
        GraphCompiler(cache=cache).compile(graph)
        blob = next(tmp_path.glob("*.json"))
        before = blob.stat().st_mtime_ns
        # a second cache compiling the identical workload publishes the
        # same signature — the existing blob must be left untouched
        GraphCompiler(
            cache=RecipeCache(save_dir=tmp_path)
        ).compile(record_program().graph)
        assert blob.stat().st_mtime_ns == before

    def test_corrupt_blob_republished_after_miss(self, tmp_path):
        cache = RecipeCache(save_dir=tmp_path)
        graph = record_program().graph
        GraphCompiler(cache=cache).compile(graph)
        blob = next(tmp_path.glob("*.json"))
        blob.write_text("{garbage")
        # the corrupt load degrades to a miss AND removes the blob, so
        # the recompile's put can publish a good copy over it
        fresh = RecipeCache(save_dir=tmp_path)
        compiler = GraphCompiler(cache=fresh)
        compiler.compile(record_program().graph)
        assert compiler.last_cache_hit is False
        reread = RecipeCache(save_dir=tmp_path)
        verifier = GraphCompiler(cache=reread)
        verifier.compile(record_program().graph)
        assert verifier.last_cache_hit is True
        assert reread.disk_hits == 1
