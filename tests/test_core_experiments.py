"""Integration tests: the paper's experiments reproduce their claims.

These are the repository's acceptance tests — each experiment's
qualitative shape checks against the paper must pass on the default
(calibrated) configuration.
"""

import pytest

from repro.core import (
    run_activation_study,
    run_attention_study,
    run_e2e,
    run_mme_vs_tpc,
    run_op_mapping,
)
from repro.core.reference import TABLE2
from repro.hw.costmodel import EngineKind


@pytest.fixture(scope="module")
def attention_study():
    return run_attention_study()


@pytest.fixture(scope="module")
def activation_study():
    return run_activation_study()


@pytest.fixture(scope="module")
def e2e_gpt():
    return run_e2e("gpt")


class TestTable1:
    def test_all_probes_match_paper(self):
        result = run_op_mapping()
        assert result.all_match(), [
            str(c) for c in result.checks() if not c.passed
        ]

    def test_render_contains_all_rows(self):
        result = run_op_mapping()
        text = result.render()
        assert "torch.matmul" in text and "MME" in text
        assert "scalar * tensor" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mme_vs_tpc()

    def test_all_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_row_count_and_sizes(self, result):
        assert [r.size for r in result.rows] == [r.size for r in TABLE2]

    def test_speedup_saturates_near_paper(self, result):
        final = result.rows[-1]
        assert final.speedup == pytest.approx(6.6, rel=0.15)

    def test_render(self, result):
        assert "Speedup" in result.render()


class TestFigures456(object):
    def test_all_checks_pass(self, attention_study):
        failed = [str(c) for c in attention_study.checks() if not c.passed]
        assert not failed, failed

    def test_fig4_softmax_dominates_tpc(self, attention_study):
        assert attention_study.softmax.softmax_tpc_share >= 0.8

    def test_fig5_linear_speedup_band(self, attention_study):
        assert 4.0 <= attention_study.linear_speedup <= 8.0

    def test_fig6_performer_between_softmax_and_linear(self, attention_study):
        s = attention_study.softmax.total_time_us
        l = attention_study.linear.total_time_us
        p = attention_study.performer.total_time_us
        assert l < p < s

    def test_render_contains_figures(self, attention_study):
        text = attention_study.render(width=60)
        assert "Figure 4" in text and "Figure 6" in text
        assert "MME" in text


class TestFigure7:
    def test_all_checks_pass(self, activation_study):
        failed = [str(c) for c in activation_study.checks() if not c.passed]
        assert not failed, failed

    def test_glu_is_slowest(self, activation_study):
        times = {a: activation_study.total_ms(a)
                 for a in ("relu", "leaky_relu", "gelu", "glu")}
        assert max(times, key=times.get) == "glu"

    def test_rows_cover_paper_activations(self, activation_study):
        acts = [r[0] for r in activation_study.rows()]
        assert acts == ["relu", "leaky_relu", "gelu", "glu"]


class TestFigures89:
    def test_gpt_checks_pass(self, e2e_gpt):
        failed = [str(c) for c in e2e_gpt.checks() if not c.passed]
        assert not failed, failed

    def test_bert_checks_pass(self):
        result = run_e2e("bert")
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_oom_at_batch_128(self, e2e_gpt):
        assert e2e_gpt.oom_at_large_batch

    def test_training_step_contains_all_phases(self, e2e_gpt):
        srcs = {ev.scope for ev in e2e_gpt.timeline.events}
        assert any("bwd" in s for s in srcs)
        assert any("optimizer" in s for s in srcs)

    def test_unknown_model_rejected(self):
        from repro.util.errors import DataError

        with pytest.raises(DataError, match="unknown model 'llama'"):
            run_e2e("llama")

    def test_render(self, e2e_gpt):
        text = e2e_gpt.render(width=60)
        assert "Figure 8" in text and "GiB" in text
