"""Tests for multi-iteration profiling and the where op."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.costmodel import EngineKind
from repro.synapse import SynapseProfiler


def small_graph():
    with ht.record("iter", mode="symbolic") as rec:
        a = ht.input_tensor((256, 256), name="a")
        b = ht.input_tensor((256, 256), name="b")
        F.matmul(F.softmax(F.matmul(a, b)), b)
    return rec.graph


class TestProfileRepeated:
    def test_first_iteration_includes_compile(self):
        results = SynapseProfiler().profile_repeated(small_graph(), 3)
        assert len(results) == 3
        first, *rest = results
        compile_events = first.timeline.engine_events(EngineKind.HOST)
        assert any("compile" in ev.name for ev in compile_events)
        for r in rest:
            assert not r.timeline.engine_events(EngineKind.HOST)

    def test_steady_state_iterations_equal(self):
        results = SynapseProfiler().profile_repeated(small_graph(), 4)
        steady = [r.total_time_us for r in results[1:]]
        assert max(steady) == pytest.approx(min(steady), rel=1e-6)

    def test_first_iteration_slower(self):
        results = SynapseProfiler().profile_repeated(small_graph(), 2)
        assert results[0].total_time_us > results[1].total_time_us

    def test_compile_cost_scales_with_schedule(self):
        results = SynapseProfiler().profile_repeated(
            small_graph(), 1, compile_us_per_op=100.0
        )
        compile_ev = results[0].timeline.engine_events(EngineKind.HOST)[0]
        assert compile_ev.dur_us == 100.0 * len(results[0].schedule)

    def test_compile_can_be_disabled(self):
        results = SynapseProfiler().profile_repeated(
            small_graph(), 2, compile_us_per_op=0.0
        )
        assert not results[0].timeline.engine_events(EngineKind.HOST)
        assert results[0].total_time_us == pytest.approx(
            results[1].total_time_us, rel=1e-6
        )

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            SynapseProfiler().profile_repeated(small_graph(), 0)


class TestWhere:
    def test_selects_by_mask(self):
        with ht.record():
            mask = ht.tensor([1.0, 0.0, 1.0])
            a = ht.tensor([10.0, 20.0, 30.0])
            b = ht.tensor([-1.0, -2.0, -3.0])
            out = F.where(mask, a, b)
            np.testing.assert_allclose(out.numpy(), [10.0, -2.0, 30.0])

    def test_broadcasts(self):
        with ht.record():
            mask = ht.tensor(np.ones((3, 1)))
            a = ht.tensor(np.full((3, 4), 7.0))
            b = ht.tensor(np.zeros((1, 4)))
            assert F.where(mask, a, b).shape == (3, 4)

    def test_gradients_split_by_mask(self):
        mask_np = np.array([1.0, 0.0, 1.0, 0.0])
        with ht.record():
            mask = ht.tensor(mask_np)
            a = ht.tensor(np.ones(4), requires_grad=True)
            b = ht.tensor(np.ones(4), requires_grad=True)
            F.sum(F.where(mask, a, b)).backward()
            np.testing.assert_allclose(a.grad.numpy(), mask_np)
            np.testing.assert_allclose(b.grad.numpy(), 1.0 - mask_np)

    def test_mask_carries_no_gradient(self):
        with ht.record():
            mask = ht.tensor([1.0, 0.0], requires_grad=True)
            a = ht.tensor([1.0, 2.0], requires_grad=True)
            b = ht.tensor([3.0, 4.0])
            F.sum(F.where(mask, a, b)).backward()
            assert mask.grad is None

    def test_numeric_gradcheck(self):
        rng = np.random.default_rng(0)
        mask_np = (rng.random((3, 3)) > 0.5).astype(np.float64)
        a0 = rng.normal(size=(3, 3))
        b0 = rng.normal(size=(3, 3))

        def value(av):
            with ht.record():
                out = F.mean(F.square(F.where(
                    ht.tensor(mask_np), ht.tensor(av, requires_grad=True),
                    ht.tensor(b0),
                )))
                return out.item()

        with ht.record():
            a = ht.tensor(a0, requires_grad=True)
            loss = F.mean(F.square(F.where(ht.tensor(mask_np), a,
                                           ht.tensor(b0))))
            loss.backward()
            g = a.grad.numpy()
        eps = 1e-4
        for idx in [(0, 0), (1, 1), (2, 2)]:
            ap, am = a0.copy(), a0.copy()
            ap[idx] += eps
            am[idx] -= eps
            num = (value(ap) - value(am)) / (2 * eps)
            assert g[idx] == pytest.approx(num, abs=2e-3)

    def test_where_is_tpc_mapped(self):
        from repro.synapse import engine_for

        assert engine_for("where").value == "TPC"
