"""Shared-HBM bandwidth contention: arbiter, cost split, runtime.

Covers the contended memory model end to end:

* :class:`BandwidthArbiter` — water-filled equal shares, per-drainer
  rate caps, the aggregate-rate invariant, completion accounting;
* :class:`CostParts` — recomposing the compute/memory split at full
  bandwidth reproduces the closed-form op durations bit for bit;
* fused-chain traffic — every member's chain-external reads are
  charged (the undercount regression);
* the contended runtime — single ops are unchanged, overlapping
  memory-bound phases stall, ``shared=False`` reproduces the
  uncontended timeline through the fluid event machinery, and the
  ``hbm_contention=False`` toggle replays the legacy path.
"""

import math

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw import BandwidthArbiter, EngineKind
from repro.hw.device import GaudiDevice
from repro.hw.dtypes import itemsize
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    Runtime,
    SynapseProfiler,
    fused_chain_traffic_bytes,
    op_cost_parts,
    op_duration_us,
)
from repro.util.errors import ExecutionError

BW = 1e12  # 1 TB/s for round numbers


# -- the arbiter --------------------------------------------------------------


class TestBandwidthArbiter:
    def test_single_drainer_gets_full_bandwidth(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e9, 0.0)
        assert arb.allocation(0) == BW

    def test_equal_shares_when_uncapped(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e9, 0.0)
        arb.admit(1, 1e9, 0.0)
        assert arb.allocation(0) == pytest.approx(BW / 2)
        assert arb.allocation(1) == pytest.approx(BW / 2)
        assert arb.total_rate() == pytest.approx(BW)

    def test_cap_redistributes_to_uncapped(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e9, 0.0, rate_cap=BW / 10)
        arb.admit(1, 1e9, 0.0)
        assert arb.allocation(0) == pytest.approx(BW / 10)
        assert arb.allocation(1) == pytest.approx(BW * 9 / 10)

    def test_caps_bound_total_rate(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e9, 0.0, rate_cap=BW / 10)
        arb.admit(1, 1e9, 0.0, rate_cap=BW / 5)
        assert arb.total_rate() == pytest.approx(BW / 10 + BW / 5)

    def test_completion_frees_share(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e6, 0.0)          # drains in 2 us at half rate
        arb.admit(1, 1e9, 0.0)
        done = arb.advance(arb.next_completion_us())
        assert done == [0]
        assert arb.allocation(1) == BW  # freed share flows back

    def test_achieved_bandwidth_of_completed(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e6, 0.0)
        arb.advance(arb.next_completion_us())
        assert arb.achieved_bandwidth(0) == pytest.approx(BW, rel=1e-6)

    def test_rate_log_never_exceeds_bandwidth(self):
        arb = BandwidthArbiter(BW)
        t = 0.0
        for i, (byts, cap) in enumerate(
            [(1e6, math.inf), (5e6, BW / 4), (2e6, math.inf), (1e7, BW / 2)]
        ):
            arb.admit(i, byts, t, rate_cap=cap)
            t += 0.3
            arb.advance(t)
        while arb.active:
            arb.advance(arb.next_completion_us())
        for seg in arb.rate_log:
            assert seg.total_rate <= BW * (1 + 1e-12)
            assert seg.end_us > seg.start_us

    def test_unshared_mode_ignores_concurrency(self):
        arb = BandwidthArbiter(BW, shared=False)
        arb.admit(0, 1e9, 0.0)
        arb.admit(1, 1e9, 0.0, rate_cap=BW / 4)
        assert arb.allocation(0) == BW
        assert arb.allocation(1) == BW / 4

    def test_admit_rejects_nonpositive_bytes(self):
        arb = BandwidthArbiter(BW)
        with pytest.raises(ExecutionError):
            arb.admit(0, 0.0, 0.0)

    def test_admit_rejects_duplicate_key(self):
        arb = BandwidthArbiter(BW)
        arb.admit(0, 1e6, 0.0)
        with pytest.raises(ExecutionError):
            arb.admit(0, 1e6, 0.1)

    def test_advance_rejects_rewind(self):
        arb = BandwidthArbiter(BW)
        arb.advance(5.0)
        with pytest.raises(ExecutionError):
            arb.advance(4.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ExecutionError):
            BandwidthArbiter(0.0)


# -- the cost split -----------------------------------------------------------


def _compile_layer(**options):
    from repro.models import TransformerLayer, paper_layer_config

    layer_cfg = paper_layer_config("softmax")
    layer = TransformerLayer(layer_cfg, materialize=False)
    with ht.record("parts-layer", mode="symbolic") as rec:
        layer(ht.input_tensor((2, 128, layer_cfg.d_model), name="x"))
    return GraphCompiler(options=CompilerOptions(**options)).compile(rec.graph)


class TestCostParts:
    def test_recomposition_matches_closed_form_exactly(self):
        """max(compute, mem) + serial at full bandwidth IS time_us —
        bit-exact, so the contention-off path cannot drift."""
        schedule = _compile_layer()
        cost = GaudiDevice().cost_model
        bw = cost.config.hbm.effective_bandwidth
        assert len(schedule.ops) > 10
        for op in schedule.ops:
            parts = op_cost_parts(cost, op)
            assert parts.uncontended_time_us(bw) == op_duration_us(cost, op)

    def test_parts_are_nonnegative_and_typed(self):
        schedule = _compile_layer()
        cost = GaudiDevice().cost_model
        for op in schedule.ops:
            parts = op_cost_parts(cost, op)
            assert parts.compute_us >= 0
            assert parts.hbm_bytes >= 0
            assert parts.serial_us >= 0
            assert parts.rate_cap > 0

    def test_dma_ops_are_rate_capped(self):
        schedule = _compile_layer()
        cost = GaudiDevice().cost_model
        dma_link = cost.config.dma.bandwidth_bytes_per_s
        dma_parts = [
            op_cost_parts(cost, op) for op in schedule.ops
            if op.engine is EngineKind.DMA
        ]
        assert dma_parts, "layer should stage DMA transfers"
        assert all(p.rate_cap == dma_link for p in dma_parts)


# -- fused-chain traffic (the undercount regression) --------------------------


class TestFusedChainTraffic:
    def _chain_schedule(self):
        """exp(x) -> add(., y) -> relu: the middle op reads the graph
        input ``y``, which the old accounting silently dropped."""
        with ht.record("chain", mode="concrete") as rec:
            x = ht.tensor(np.ones((64, 64), dtype=np.float32), name="x")
            y = ht.tensor(np.ones((64, 64), dtype=np.float32), name="y")
            F.mean(F.relu(F.add(F.exp(x), y)))
        return GraphCompiler().compile(rec.graph)

    def test_middle_member_external_read_is_charged(self):
        schedule = self._chain_schedule()
        fused = [op for op in schedule.ops if len(op.items) >= 3]
        assert fused, "exp/add/relu should fuse into one chain"
        op = fused[0]
        width = itemsize(schedule.graph.value(op.writes[0]).dtype)
        tensor_bytes = 64 * 64 * width
        # external reads: x (into exp) AND y (into add, mid-chain)
        assert op.external_read_bytes == 2 * tensor_bytes
        traffic = fused_chain_traffic_bytes(op)
        assert traffic == 2 * tensor_bytes + op.items[-1].bytes_written
        # the regression: first.bytes_read counts only x
        undercount = op.items[0].bytes_read + op.items[-1].bytes_written
        assert traffic > undercount

    def test_fallback_for_unannotated_ops(self):
        schedule = self._chain_schedule()
        op = next(op for op in schedule.ops if len(op.items) >= 3)
        import dataclasses
        legacy = dataclasses.replace(op, external_read_bytes=None)
        assert fused_chain_traffic_bytes(legacy) == (
            op.items[0].bytes_read + op.items[-1].bytes_written
        )

    def test_single_op_traffic_unchanged(self):
        schedule = self._chain_schedule()
        singles = [op for op in schedule.ops if len(op.items) == 1
                   and op.engine is not EngineKind.DMA]
        assert singles
        for op in singles:
            assert fused_chain_traffic_bytes(op) == (
                op.items[0].bytes_read + op.items[-1].bytes_written
            )


# -- the contended runtime ----------------------------------------------------


def _record_single_matmul():
    with ht.record("one-matmul", mode="symbolic") as rec:
        a = ht.input_tensor((256, 256), name="a")
        b = ht.input_tensor((256, 256), name="b")
        F.matmul(a, b)
    return rec.graph


def _record_overlap_heavy():
    """Two independent memory-bound streams: a matmul on the MME
    against dominant elementwise traffic on the TPC, no cross-deps —
    the TPC stream is the critical path, so any bandwidth it loses to
    the MME's drain stretches the makespan."""
    with ht.record("overlap", mode="symbolic") as rec:
        a = ht.input_tensor((1024, 1024), name="a")
        b = ht.input_tensor((1024, 1024), name="b")
        c = ht.input_tensor((8192, 8192), name="c")
        d = ht.input_tensor((8192, 8192), name="d")
        F.matmul(a, b)
        F.add(F.add(c, d), c)
    return rec.graph


def _events_key(events):
    return [(ev.name, ev.engine, ev.start_us, ev.dur_us) for ev in events]


class TestContendedRuntime:
    def test_single_op_timing_unchanged(self):
        schedule = GraphCompiler().compile(_record_single_matmul())
        on = Runtime(GaudiDevice()).execute(schedule, hbm_contention=True)
        off = Runtime(GaudiDevice()).execute(schedule, hbm_contention=False)
        assert on.total_time_us == pytest.approx(
            off.total_time_us, rel=1e-12, abs=1e-9
        )
        assert on.contention_stall_us == pytest.approx(0.0, abs=1e-9)

    def test_overlapping_streams_stall(self):
        schedule = GraphCompiler().compile(_record_overlap_heavy())
        on = Runtime(GaudiDevice()).execute(schedule, hbm_contention=True)
        off = Runtime(GaudiDevice()).execute(schedule, hbm_contention=False)
        assert on.contention_stall_us > 0
        assert on.total_time_us > off.total_time_us
        stalled = [
            ev for ev in on.timeline.events if ev.contention_stall_us > 0
        ]
        assert stalled
        # achieved bandwidth is reported for every traffic-bearing op
        assert all(
            ev.hbm_gbps > 0 for ev in on.timeline.events if ev.hbm_bytes > 0
        )

    def test_contention_off_reports_no_stall_fields(self):
        schedule = GraphCompiler().compile(_record_overlap_heavy())
        off = Runtime(GaudiDevice()).execute(schedule, hbm_contention=False)
        assert off.contention_stall_us == 0.0
        assert all(
            ev.contention_stall_us == 0.0 for ev in off.timeline.events
        )

    @pytest.mark.parametrize("recorder", [_record_single_matmul,
                                          _record_overlap_heavy])
    @pytest.mark.parametrize("reorder", [False, True])
    def test_unshared_fluid_matches_legacy_replay(self, recorder, reorder):
        """The fluid event machinery with sharing disabled reproduces
        the closed-form timeline — the toggle's two paths agree."""
        schedule = GraphCompiler().compile(recorder())
        legacy = Runtime(GaudiDevice()).execute(
            schedule, reorder=reorder, hbm_contention=False
        )
        rt = Runtime(GaudiDevice())
        order = list(legacy.issue_order)
        events, stall = rt._execute_contended(
            schedule, order, rt.device.now, shared=False
        )
        assert stall == pytest.approx(0.0, abs=1e-6)
        got = sorted(_events_key(events))
        want = sorted(_events_key(legacy.timeline.events))
        assert len(got) == len(want)
        for (gn, ge, gs, gd), (wn, we, ws, wd) in zip(got, want):
            assert gn == wn and ge is we
            assert gs == pytest.approx(ws, rel=1e-9, abs=1e-6)
            assert gd == pytest.approx(wd, rel=1e-9, abs=1e-6)

    def test_contended_never_faster_with_reorder(self):
        schedule = GraphCompiler().compile(_record_overlap_heavy())
        on = Runtime(GaudiDevice()).execute(
            schedule, reorder=True, hbm_contention=True
        )
        off = Runtime(GaudiDevice()).execute(
            schedule, reorder=True, hbm_contention=False
        )
        assert on.total_time_us >= off.total_time_us * (1 - 1e-12)


# -- profiler surface ---------------------------------------------------------


class TestProfilerContentionMetrics:
    def test_profile_result_aggregates(self):
        profiler = SynapseProfiler()
        res = profiler.profile(_record_overlap_heavy())
        assert res.contention_stall_us > 0
        assert res.contended_op_count > 0
        assert 0 < res.contention_stall_fraction < 1
        assert "HBM contention stall" in res.summary()

    def test_profile_with_contention_off(self):
        profiler = SynapseProfiler(
            options=CompilerOptions(hbm_contention=False)
        )
        res = profiler.profile(_record_overlap_heavy())
        assert res.contention_stall_us == 0.0
        assert res.contended_op_count == 0

    def test_chrome_trace_carries_contention_args(self):
        profiler = SynapseProfiler()
        res = profiler.profile(_record_overlap_heavy())
        import json

        trace = json.loads(res.timeline.to_chrome_trace())
        args = [
            ev["args"] for ev in trace["traceEvents"] if ev.get("args")
        ]
        assert any("contention_stall_us" in a for a in args)
        assert any(a.get("hbm_bytes", 0) > 0 for a in args)


# -- the A11 ablation ---------------------------------------------------------


class TestHbmContentionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.core import run_hbm_contention_ablation

        return run_hbm_contention_ablation()

    def test_all_checks_pass(self, result):
        for check in result.checks():
            assert check.passed, str(check)

    def test_render_mentions_every_workload(self, result):
        text = result.render()
        assert "A11" in text
        for row in result.rows:
            assert row.name in text

    def test_unknown_row_raises(self, result):
        with pytest.raises(KeyError):
            result.row("nope")

    def test_pipelined_attention_is_most_contended(self, result):
        """The overlap-optimized workload loses the most to sharing —
        the in-depth counterpart of the paper's Fig 6 remark."""
        pipelined = result.row("pipelined attention (A6)")
        assert pipelined.slowdown == max(r.slowdown for r in result.rows)
