"""Round-trip tests for graph serialization."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.models import TransformerLayer, paper_layer_config
from repro.synapse import (
    GraphCompiler,
    SynapseProfiler,
    execute_outputs,
    graph_from_json,
    graph_to_json,
    load_graph,
    save_graph,
)
from repro.util.errors import GraphError


def record_program():
    rng = np.random.default_rng(0)
    arrays = {
        "a": rng.normal(size=(4, 6)).astype(np.float32),
        "b": rng.normal(size=(6, 5)).astype(np.float32),
    }
    with ht.record("serialize-me", mode="concrete") as rec:
        a = ht.tensor(arrays["a"], name="a")
        b = ht.tensor(arrays["b"], name="b")
        out = F.softmax(F.mul_scalar(F.matmul(a, b), 0.5))
        eager = out.numpy()
    return rec.graph, arrays, eager


class TestRoundTrip:
    def test_structure_preserved(self):
        graph, _, _ = record_program()
        restored = graph_from_json(graph_to_json(graph))
        assert restored.name == graph.name
        assert len(restored) == len(graph)
        assert [n.op for n in restored.nodes] == [n.op for n in graph.nodes]
        for orig, new in zip(graph.nodes, restored.nodes):
            assert orig.attrs == new.attrs
            assert orig.src == new.src and orig.scope == new.scope

    def test_functional_equivalence(self):
        graph, arrays, eager = record_program()
        restored = graph_from_json(graph_to_json(graph))
        outs = execute_outputs(restored, arrays)
        np.testing.assert_allclose(list(outs.values())[0], eager, rtol=1e-5)

    def test_compile_equivalence(self):
        graph, _, _ = record_program()
        restored = graph_from_json(graph_to_json(graph))
        s1 = GraphCompiler().compile(graph)
        s2 = GraphCompiler().compile(restored)
        assert len(s1) == len(s2)
        assert [op.engine for op in s1.ops] == [op.engine for op in s2.ops]
        assert s1.memory.peak_bytes == s2.memory.peak_bytes

    def test_tuple_attrs_survive(self):
        with ht.record("t", mode="symbolic") as rec:
            x = ht.input_tensor((2, 3, 4), name="x")
            F.transpose(x, (0, 2, 1))
        restored = graph_from_json(graph_to_json(rec.graph))
        assert restored.nodes[0].attrs["axes"] == (0, 2, 1)

    def test_paper_scale_graph_round_trips(self):
        cfg = paper_layer_config("softmax")
        layer = TransformerLayer(cfg, materialize=False)
        with ht.record("fig4", mode="symbolic") as rec:
            layer(ht.input_tensor((128, 2048, cfg.d_model), name="x"))
        restored = graph_from_json(graph_to_json(rec.graph))
        t1 = SynapseProfiler().profile(rec.graph).total_time_us
        t2 = SynapseProfiler().profile(restored).total_time_us
        assert t1 == pytest.approx(t2, rel=1e-9)

    def test_file_io(self, tmp_path):
        graph, arrays, eager = record_program()
        path = save_graph(graph, tmp_path / "g.json")
        restored = load_graph(path)
        outs = execute_outputs(restored, arrays)
        np.testing.assert_allclose(list(outs.values())[0], eager, rtol=1e-5)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(GraphError, match="not valid JSON"):
            graph_from_json("{nope")

    def test_wrong_format(self):
        with pytest.raises(GraphError, match="not a serialized"):
            graph_from_json('{"format": "pickle"}')

    def test_wrong_version(self):
        with pytest.raises(GraphError, match="version"):
            graph_from_json(
                '{"format": "repro-graph", "version": 999, '
                '"values": [], "nodes": []}'
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="cannot read"):
            load_graph(tmp_path / "nope.json")


class TestScheduleRoundTrip:
    """Compiled schedules (the on-disk recipe format) round-trip."""

    def _schedule(self, options=None):
        graph, arrays, eager = record_program()
        compiler = GraphCompiler(options=options) if options else \
            GraphCompiler()
        return compiler.compile(graph), arrays, eager

    def test_ops_and_memory_preserved(self):
        from repro.synapse import schedule_from_json, schedule_to_json

        schedule, _, _ = self._schedule()
        back = schedule_from_json(schedule_to_json(schedule))
        assert len(back.ops) == len(schedule.ops)
        for a, b in zip(schedule.ops, back.ops):
            assert (a.index, a.label, a.engine, a.deps) == (
                b.index, b.label, b.engine, b.deps)
            assert len(a.items) == len(b.items)
        assert back.memory.persistent_bytes == \
            schedule.memory.persistent_bytes
        assert back.memory.peak_bytes == schedule.memory.peak_bytes
        assert back.stats["passes"] == schedule.stats["passes"]

    def test_restored_schedule_executes_identically(self):
        from repro.hw.device import GaudiDevice
        from repro.synapse import (
            Runtime,
            execute_schedule,
            schedule_from_json,
            schedule_to_json,
        )

        schedule, arrays, eager = self._schedule()
        back = schedule_from_json(schedule_to_json(schedule))
        env = execute_schedule(back, arrays)
        out = env[back.graph.nodes[-1].output]
        np.testing.assert_array_equal(out, eager)
        a = Runtime(GaudiDevice()).execute(schedule, reorder=True)
        b = Runtime(GaudiDevice()).execute(back, reorder=True)
        assert a.total_time_us == b.total_time_us

    def test_sliced_schedule_round_trips(self):
        from repro.synapse import (
            CompilerOptions,
            execute_schedule,
            schedule_from_json,
            schedule_to_json,
        )

        schedule, arrays, eager = self._schedule(
            CompilerOptions(tpc_slice_ops=True, tpc_slice_min_us=0.0)
        )
        back = schedule_from_json(schedule_to_json(schedule))
        ops = [n.op for n in back.graph.nodes]
        assert ops == [n.op for n in schedule.graph.nodes]
        env = execute_schedule(back, arrays)
        out = env[back.graph.nodes[-1].output]
        np.testing.assert_array_equal(out, eager)

    def test_malformed_recipe_raises(self):
        from repro.synapse import schedule_from_json, schedule_to_json

        with pytest.raises(GraphError, match="not valid JSON"):
            schedule_from_json("{nope")
        with pytest.raises(GraphError, match="not a serialized"):
            schedule_from_json('{"format": "repro-graph"}')
        with pytest.raises(GraphError, match="version"):
            schedule_from_json(
                '{"format": "repro-recipe", "version": 999}'
            )
        schedule, _, _ = self._schedule()
        import json

        payload = json.loads(schedule_to_json(schedule))
        del payload["ops"][0]["engine"]
        with pytest.raises(GraphError, match="malformed recipe"):
            schedule_from_json(json.dumps(payload))
