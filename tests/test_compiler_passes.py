"""The GraphCompiler pass pipeline: structure, toggles, and stats.

The refactor's contract: ``compile()`` is an ordered list of named
passes over a shared CompilationState, any disableable pass can be
turned off in isolation without breaking the pipeline, every pass
reports instrumentation into ``Schedule.stats["passes"]``, and — the
semantic guarantee — every valid pass-subset configuration still
produces a schedule whose functional execution matches the eager
frontend (checked by a hypothesis sweep over toggle combinations).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    PASS_OPTION_FLAGS,
    default_passes,
    disable_passes,
    execute_schedule,
)
from repro.util.errors import CompileError

PASS_ORDER = [
    "validate", "attention_lowering", "tpc_slicing", "lower_composites",
    "view_elision", "elementwise_fusion", "recompile_injection",
    "dma_staging", "emit", "tensor_parallel", "collective_injection",
    "pipeline_partition", "memory_planning",
]

#: passes that default off (single-card experiments have no gradients
#: to all-reduce, no TP/PP groups; op slicing is the opt-in overlap
#: optimization)
DEFAULT_OFF = {
    "collective_injection", "tpc_slicing", "tensor_parallel",
    "pipeline_partition",
}


def small_graph(*, with_softmax=True, with_glu=False):
    rng = np.random.default_rng(7)
    with ht.record("small", mode="concrete") as rec:
        a = ht.tensor(rng.normal(size=(4, 6)).astype(np.float32), name="a")
        b = ht.tensor(rng.normal(size=(6, 8)).astype(np.float32), name="b")
        x = F.matmul(a, b)
        x = F.relu(F.add(x, x))
        if with_softmax:
            x = F.softmax(x, axis=-1)
        if with_glu:
            x = F.glu(x)
        out = F.mean(F.exp(x))
        eager = out.numpy()
    return rec.graph, eager


class TestPipelineStructure:
    def test_default_pipeline_order(self):
        assert [p.name for p in default_passes()] == PASS_ORDER

    def test_stats_report_every_pass_in_order(self):
        graph, _ = small_graph()
        schedule = GraphCompiler().compile(graph)
        entries = schedule.stats["passes"]
        assert [e["pass"] for e in entries] == PASS_ORDER
        for e in entries:
            expected = e["pass"] not in DEFAULT_OFF
            assert e["enabled"] is expected
            assert e["wall_us"] >= 0.0
            assert e["units_in"] >= 0 and e["units_out"] >= 0
            assert e["transforms"] >= 0

    def test_units_chain_is_consistent(self):
        graph, _ = small_graph()
        schedule = GraphCompiler().compile(graph)
        entries = schedule.stats["passes"]
        for prev, nxt in zip(entries, entries[1:]):
            assert prev["units_out"] == nxt["units_in"]
        assert entries[-1]["units_out"] == len(schedule.ops)
        assert schedule.stats["scheduled_ops"] == len(schedule.ops)

    def test_headline_stats_preserved(self):
        """The seed compiler's stats keys survive the refactor."""
        graph, _ = small_graph()
        stats = GraphCompiler().compile(graph).stats
        for key in ("nodes", "scheduled_ops", "fused_chains",
                    "dma_transfers", "recompilations"):
            assert key in stats, key

    def test_emit_is_not_disableable(self):
        # emit always runs; attention_lowering always runs too — its
        # "naive" default is the identity, so there is nothing to toggle
        assert "emit" not in PASS_OPTION_FLAGS
        assert (set(PASS_OPTION_FLAGS)
                == set(PASS_ORDER) - {"emit", "attention_lowering"})


class TestPassToggles:
    def test_disable_passes_helper(self):
        options = disable_passes(CompilerOptions(), "elementwise_fusion")
        assert options.fuse_elementwise is False
        assert options.lower_composites is True  # untouched

    def test_disable_unknown_pass_raises(self):
        with pytest.raises(ValueError, match="emit"):
            disable_passes(CompilerOptions(), "emit")
        with pytest.raises(ValueError, match="nope"):
            disable_passes(CompilerOptions(), "nope")

    def test_fusion_off_marks_entry_disabled(self):
        graph, _ = small_graph()
        options = disable_passes(CompilerOptions(), "elementwise_fusion")
        schedule = GraphCompiler(options=options).compile(graph)
        entry = next(e for e in schedule.stats["passes"]
                     if e["pass"] == "elementwise_fusion")
        assert entry["enabled"] is False
        assert schedule.stats["fused_chains"] == 0

    def test_each_single_disable_still_compiles(self):
        graph, eager = small_graph()
        for name in PASS_OPTION_FLAGS:
            if name == "lower_composites":
                continue  # composites present: rejection tested below
            options = disable_passes(CompilerOptions(), name)
            schedule = GraphCompiler(options=options).compile(graph)
            assert len(schedule.ops) > 0, name

    def test_lowering_off_rejects_composites(self):
        graph, _ = small_graph(with_softmax=True)
        options = disable_passes(CompilerOptions(), "lower_composites")
        with pytest.raises(CompileError, match="lowering is disabled"):
            GraphCompiler(options=options).compile(graph)

    def test_memory_planning_off_yields_empty_plan(self):
        graph, _ = small_graph()
        options = disable_passes(CompilerOptions(), "memory_planning")
        schedule = GraphCompiler(options=options).compile(graph)
        assert schedule.memory.peak_bytes == 0

    def test_recompile_off_removes_host_stalls(self):
        graph, _ = small_graph(with_glu=True)
        base = GraphCompiler().compile(graph)
        assert base.stats["recompilations"] == 1
        options = disable_passes(CompilerOptions(), "recompile_injection")
        off = GraphCompiler(options=options).compile(graph)
        assert off.stats["recompilations"] == 0


# -- the semantic contract under every pass subset --------------------------

TOGGLEABLE = ("validate_graph", "elide_views", "fuse_elementwise",
              "inject_recompiles", "insert_dma", "plan_memory")

subset_strategy = st.lists(
    st.booleans(), min_size=len(TOGGLEABLE), max_size=len(TOGGLEABLE)
)
shape_strategy = st.tuples(
    st.integers(2, 8), st.integers(2, 8), st.integers(2, 10).map(lambda k: 2 * k)
)


class TestPassSubsetEquivalence:
    @given(subset_strategy, shape_strategy, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_any_subset_matches_eager(self, flags, dims, with_glu):
        """Every pass-subset config preserves execution semantics."""
        rows, inner, cols = dims
        rng = np.random.default_rng(99)
        with ht.record("subset", mode="concrete") as rec:
            a = ht.tensor(rng.normal(size=(rows, inner)).astype(np.float32),
                          name="a")
            b = ht.tensor(rng.normal(size=(inner, cols)).astype(np.float32),
                          name="b")
            x = F.matmul(a, b)
            x = F.softmax(F.add(x, x), axis=-1)
            if with_glu:
                x = F.glu(x)
            out = F.mean(F.exp(x))
            eager = out.numpy()
        options = dataclasses.replace(
            CompilerOptions(), **dict(zip(TOGGLEABLE, flags))
        )
        schedule = GraphCompiler(options=options).compile(rec.graph)
        # execute_schedule self-checks every scheduled op against the
        # graph-level reference and raises on any divergence
        env = execute_schedule(schedule, {
            "a": rng.normal(size=(rows, inner)).astype(np.float32),
            "b": rng.normal(size=(inner, cols)).astype(np.float32),
        })
        final = schedule.graph.nodes[-1].output
        assert env[final].shape == eager.shape

    @given(subset_strategy)
    @settings(max_examples=25, deadline=None)
    def test_stats_consistent_under_any_subset(self, flags):
        graph, _ = small_graph()
        options = dataclasses.replace(
            CompilerOptions(), **dict(zip(TOGGLEABLE, flags))
        )
        schedule = GraphCompiler(options=options).compile(graph)
        entries = schedule.stats["passes"]
        assert [e["pass"] for e in entries] == PASS_ORDER
        for prev, nxt in zip(entries, entries[1:]):
            assert prev["units_out"] == nxt["units_in"]
        by_name = {e["pass"]: e for e in entries}
        for name, flag in zip(
            ("validate", "view_elision", "elementwise_fusion",
             "recompile_injection", "dma_staging", "memory_planning"),
            (flags[0], flags[1], flags[2], flags[3], flags[4], flags[5]),
        ):
            assert by_name[name]["enabled"] is bool(flag)
