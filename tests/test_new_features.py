"""Tests for the extension features: dropout, timeline windows,
generation, roofline analysis, and the LayerNorm TPC kernel."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.costmodel import EngineKind
from repro.hw.config import TPCClusterConfig
from repro.core import roofline_of_schedule
from repro.models import GPT2LMHeadModel, generate, perplexity, tiny_gpt_config
from repro.synapse import GraphCompiler, Timeline, TraceEvent
from repro.tpc import REGISTRY, TPCSimulator
from repro.util.errors import DataError, ExecutionError, ShapeError


class TestDropout:
    def test_identity_when_not_training(self):
        d = ht.Dropout(0.5, training=False)
        with ht.record():
            x = ht.randn(8, 8)
            assert d(x) is x

    def test_masks_and_rescales(self):
        with ht.record():
            x = ht.tensor(np.ones((1000,), np.float32))
            y = F.dropout(x, 0.25, seed=3).numpy()
        zero_frac = (y == 0).mean()
        assert 0.15 < zero_frac < 0.35
        kept = y[y != 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75, rtol=1e-5)

    def test_deterministic_per_seed(self):
        with ht.record():
            x = ht.tensor(np.ones((100,), np.float32))
            a = F.dropout(x, 0.5, seed=7).numpy()
            b = F.dropout(x, 0.5, seed=7).numpy()
            c = F.dropout(x, 0.5, seed=8).numpy()
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_gradcheck_dropout_is_linear(self):
        # d(dropout(x))/dx = mask/(1-p); check against finite differences
        x0 = np.random.default_rng(5).normal(size=(4, 4))

        def run(arr):
            with ht.record(mode="concrete"):
                x = ht.tensor(arr, requires_grad=True)
                loss = F.mean(F.square(F.dropout(x, 0.3, seed=11)))
                loss.backward()
                return loss.item(), x.grad.numpy().copy()

        _, g = run(x0)
        eps = 1e-4
        for idx in [(0, 0), (1, 2), (3, 3)]:
            xp, xm = x0.copy(), x0.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = (run(xp)[0] - run(xm)[0]) / (2 * eps)
            assert g[idx] == pytest.approx(num, abs=2e-3)

    def test_training_module_emits_ops(self):
        d = ht.Dropout(0.5, training=True)
        with ht.record() as rec:
            d(ht.randn(4, 4))
        assert any(n.op == "dropout" for n in rec.graph.nodes)

    def test_distinct_calls_distinct_masks(self):
        d = ht.Dropout(0.5, training=True)
        with ht.record():
            x = ht.tensor(np.ones((256,), np.float32))
            a = d(x).numpy()
            b = d(x).numpy()
        assert not np.array_equal(a, b)

    def test_invalid_p(self):
        with ht.record():
            x = ht.randn(4)
            with pytest.raises(ShapeError):
                F.dropout(x, 1.5, seed=0)


class TestTimelineWindows:
    def make(self):
        return Timeline([
            TraceEvent("a", EngineKind.MME, 0.0, 10.0, src="matmul",
                       scope="layer0.attn"),
            TraceEvent("b", EngineKind.TPC, 10.0, 20.0, src="softmax",
                       scope="layer0.attn.softmax"),
            TraceEvent("c", EngineKind.MME, 30.0, 10.0, src="matmul",
                       scope="layer1.attn"),
        ])

    def test_window_clips(self):
        w = self.make().window(5.0, 32.0)
        assert len(w) == 3
        assert w.events[0].start_us == 5.0
        assert w.events[0].dur_us == 5.0
        assert w.events[2].dur_us == 2.0

    def test_window_excludes_outside(self):
        w = self.make().window(12.0, 28.0)
        assert [ev.name for ev in w.events] == ["b"]

    def test_bad_window(self):
        with pytest.raises(ExecutionError):
            self.make().window(10.0, 5.0)

    def test_filter_by_scope(self):
        f = self.make().filter(scope_prefix="layer0")
        assert {ev.name for ev in f.events} == {"a", "b"}

    def test_filter_by_src_and_engine(self):
        tl = self.make()
        assert len(tl.filter(src="matmul")) == 2
        assert len(tl.filter(engine=EngineKind.TPC)) == 1
        assert len(tl.filter(src="matmul", engine=EngineKind.TPC)) == 0

    def test_scope_span(self):
        assert self.make().scope_span("layer0") == (0.0, 30.0)
        assert self.make().scope_span("nonexistent") == (0.0, 0.0)

    def test_layer_region_of_real_trace(self):
        # windows + scope filtering work on a real e2e profile
        from repro.core import record_training_step
        from repro.synapse import SynapseProfiler

        rec = record_training_step("bert")
        profile = SynapseProfiler().profile(rec.graph)
        t0, t1 = profile.timeline.scope_span("bert.encoder")
        assert t1 > t0 > 0.0
        region = profile.timeline.window(t0, t1)
        assert region.busy_time_us(EngineKind.TPC) > 0


class TestGeneration:
    @pytest.fixture(scope="class")
    def model(self):
        return GPT2LMHeadModel(tiny_gpt_config(vocab_size=29),
                               rng=np.random.default_rng(0))

    def test_greedy_extends_prompt(self, model):
        out = generate(model, [1, 2, 3], max_new_tokens=5)
        assert len(out) == 8
        assert out[:3] == [1, 2, 3]
        assert all(0 <= t < 29 for t in out)

    def test_greedy_is_deterministic(self, model):
        a = generate(model, [4, 5], max_new_tokens=4)
        b = generate(model, [4, 5], max_new_tokens=4)
        assert a == b

    def test_sampling_uses_rng(self, model):
        a = generate(model, [4, 5], max_new_tokens=6, temperature=1.5,
                     rng=np.random.default_rng(1))
        b = generate(model, [4, 5], max_new_tokens=6, temperature=1.5,
                     rng=np.random.default_rng(2))
        assert a != b  # overwhelmingly likely with a 29-token vocab

    def test_validation(self, model):
        with pytest.raises(DataError):
            generate(model, [])
        with pytest.raises(DataError):
            generate(model, [999])
        with pytest.raises(DataError):
            generate(model, [1], max_new_tokens=-1)
        with pytest.raises(DataError):
            generate(model, [1], temperature=-0.1)

    def test_perplexity_positive_and_bounded(self, model):
        ids = np.random.default_rng(3).integers(0, 29, size=(2, 12))
        ppl = perplexity(model, ids)
        assert 1.0 < ppl < 29 * 10  # untrained: near-uniform

    def test_perplexity_validation(self, model):
        with pytest.raises(DataError):
            perplexity(model, np.array([1, 2, 3]))


class TestRoofline:
    @pytest.fixture(scope="class")
    def report(self):
        with ht.record("roof", mode="symbolic") as rec:
            a = ht.input_tensor((512, 512), name="a")
            b = ht.input_tensor((512, 512), name="b")
            s = F.softmax(F.matmul(a, b))
            F.matmul(s, b)
        schedule = GraphCompiler().compile(rec.graph)
        return roofline_of_schedule(schedule)

    def test_matmuls_are_compute_bound(self, report):
        mme = report.by_engine(EngineKind.MME)
        assert mme
        for p in mme:
            assert p.intensity > report._balance_intensity()

    def test_reductions_have_low_attainment(self, report):
        tpc = report.by_engine(EngineKind.TPC)
        reductions = [p for p in tpc if "max" in p.label or "sum" in p.label]
        if reductions:
            assert all(p.attainment(report.config) < 0.5 for p in reductions)

    def test_attainment_bounded(self, report):
        for p in report.points:
            assert 0.0 <= p.attainment(report.config) <= 1.05

    def test_partition_covers_everything(self, report):
        cb = {id(p) for p in report.compute_bound()}
        mb = {id(p) for p in report.memory_bound()}
        assert cb | mb == {id(p) for p in report.points}
        assert not (cb & mb)

    def test_render(self, report):
        text = report.render()
        assert "roof" in text.lower() and "attainment" in text


class TestLayerNormKernel:
    @pytest.fixture(scope="class")
    def sim(self):
        return TPCSimulator(TPCClusterConfig())

    def test_matches_reference(self, sim):
        rng = np.random.default_rng(0)
        x = rng.normal(2.0, 3.0, size=(10, 33)).astype(np.float32)
        r = sim.launch(REGISTRY.create("layernorm"), {"x": x})
        mu = x.mean(-1, keepdims=True)
        var = ((x - mu) ** 2).mean(-1, keepdims=True)
        ref = (x - mu) / np.sqrt(var + 1e-5)
        np.testing.assert_allclose(r.outputs["y"], ref, rtol=1e-4, atol=1e-5)

    def test_output_rows_standardized(self, sim):
        rng = np.random.default_rng(1)
        x = rng.normal(5.0, 2.0, size=(6, 128)).astype(np.float32)
        r = sim.launch(REGISTRY.create("layernorm"), {"x": x})
        np.testing.assert_allclose(r.outputs["y"].mean(-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(r.outputs["y"].std(-1), 1.0, atol=1e-2)

    def test_timing_scales_with_rows(self, sim):
        k = REGISTRY.create("layernorm")
        small = sim.launch(k, shapes={"x": (1024, 512)})
        big = sim.launch(k, shapes={"x": (4096, 512)})
        assert big.time_us > 3 * small.time_us

    def test_cheaper_than_softmax_per_row(self, sim):
        # no exponentials -> layernorm rows cost less than softmax rows
        shapes = {"x": (2048, 1024)}
        ln = sim.launch(REGISTRY.create("layernorm"), shapes=shapes)
        sm = sim.launch(REGISTRY.create("softmax"), shapes=shapes)
        assert ln.time_us < sm.time_us
