"""The A13 overlap machinery: TPC slicing, scheduler policies, lint.

The ``tpc_slicing`` pass must only fire when asked, must keep numerics
byte-identical, and must leave a graph the ``slice-reassembly`` lint
rule can certify. The runtime's explicit ``scheduler=`` policies must
agree with the legacy ``reorder`` boolean, reject unknown names, and
the lookahead planner must never lose to program order on the sliced
attention block it exists to accelerate.
"""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.costmodel import EngineKind
from repro.hw.device import GaudiDevice
from repro.synapse import (
    CompilerOptions,
    GraphCompiler,
    Runtime,
    execute_schedule,
    lint_graph,
)
from repro.util.errors import ExecutionError

#: slicing forced on regardless of the cost model's profitability bar
SLICE_ON = CompilerOptions(tpc_slice_ops=True, tpc_slice_min_us=0.0)


def record_attention(batch=4, rows=16, inner=8):
    """A concrete QK^T -> scale -> softmax -> AV block (the Fig. 4
    shape in miniature); returns (graph, input arrays, eager output)."""
    rng = np.random.default_rng(7)
    arrays = {
        "q": rng.normal(size=(batch, rows, inner)).astype(np.float32),
        "k": rng.normal(size=(batch, inner, rows)).astype(np.float32),
        "v": rng.normal(size=(batch, rows, inner)).astype(np.float32),
    }
    with ht.record("attn-slice", mode="concrete") as rec:
        q = ht.tensor(arrays["q"], name="q")
        k = ht.tensor(arrays["k"], name="k")
        v = ht.tensor(arrays["v"], name="v")
        scores = F.mul_scalar(F.matmul(q, k), 0.125)
        out = F.matmul(F.softmax(scores, axis=-1), v)
        eager = out.numpy()
    return rec.graph, arrays, eager


class TestTpcSlicingPass:
    def test_off_by_default(self):
        graph, _, _ = record_attention()
        schedule = GraphCompiler().compile(graph)
        assert schedule.stats["overlap"]["slices_created"] == 0
        assert not any(
            n.op == "assemble_rows" for n in schedule.graph.nodes
        )

    def test_slices_the_softmax_chain(self):
        graph, _, _ = record_attention()
        schedule = GraphCompiler(options=SLICE_ON).compile(graph)
        overlap = schedule.stats["overlap"]
        assert overlap["sliced_chains"] >= 1
        assert overlap["slices_created"] >= 2
        ops = [n.op for n in schedule.graph.nodes]
        assert "assemble_rows" in ops
        assert "slice_rows" in ops

    def test_numerics_byte_identical(self):
        graph, arrays, eager = record_attention()
        schedule = GraphCompiler(options=SLICE_ON).compile(graph)
        env = execute_schedule(schedule, arrays)
        out = env[schedule.graph.nodes[-1].output]
        assert np.array_equal(out, eager)

    def test_min_us_gate_skips_cheap_chains(self):
        graph, _, _ = record_attention()
        options = CompilerOptions(tpc_slice_ops=True, tpc_slice_min_us=1e9)
        schedule = GraphCompiler(options=options).compile(graph)
        assert schedule.stats["overlap"]["slices_created"] == 0

    def test_odd_row_count_not_sliced(self):
        # 7 rows has no divisor k in [2, 8] with blocks >= 2 rows
        graph, arrays, eager = record_attention(rows=7)
        schedule = GraphCompiler(options=SLICE_ON).compile(graph)
        assert schedule.stats["overlap"]["slices_created"] == 0
        env = execute_schedule(schedule, arrays)
        out = env[schedule.graph.nodes[-1].output]
        assert np.array_equal(out, eager)


class TestSliceReassemblyLint:
    def test_clean_on_sliced_graph(self):
        graph, _, _ = record_attention()
        schedule = GraphCompiler(options=SLICE_ON).compile(graph)
        findings = [
            w for w in lint_graph(schedule.graph)
            if w.rule == "slice-reassembly"
        ]
        assert findings == []

    def test_flags_broken_tiling(self):
        graph, _, _ = record_attention()
        schedule = GraphCompiler(options=SLICE_ON).compile(graph)
        sliced = schedule.graph
        victim = next(n for n in sliced.nodes if n.op == "slice_rows")
        victim.attrs["hi"] -= 1  # window no longer matches its branch
        findings = [
            w for w in lint_graph(sliced)
            if w.rule == "slice-reassembly"
        ]
        assert findings


class TestSchedulerPolicies:
    def _schedule(self, options=None):
        graph, _, _ = record_attention(batch=8, rows=64, inner=16)
        compiler = GraphCompiler(options=options or CompilerOptions())
        return compiler.compile(graph)

    def test_options_default_policy_is_lookahead(self):
        assert CompilerOptions().scheduler == "lookahead"

    def test_explicit_reorder_matches_legacy_greedy(self):
        schedule = self._schedule()
        new = Runtime(GaudiDevice()).execute(schedule, scheduler="reorder")
        old = Runtime(GaudiDevice()).execute(schedule, reorder=True)
        assert list(new.issue_order) == list(old.issue_order)
        assert new.total_time_us == pytest.approx(old.total_time_us)

    def test_explicit_inorder_matches_legacy_default(self):
        schedule = self._schedule()
        new = Runtime(GaudiDevice()).execute(schedule, scheduler="inorder")
        old = Runtime(GaudiDevice()).execute(schedule)
        assert list(new.issue_order) == list(old.issue_order)
        assert new.total_time_us == pytest.approx(old.total_time_us)

    def test_unknown_scheduler_raises(self):
        schedule = self._schedule()
        with pytest.raises(ExecutionError):
            Runtime(GaudiDevice()).execute(schedule, scheduler="priority")

    def test_lookahead_never_loses_on_sliced_attention(self):
        schedule = self._schedule(SLICE_ON)
        assert schedule.stats["overlap"]["slices_created"] >= 2
        t_look = Runtime(GaudiDevice()).execute(
            schedule, scheduler="lookahead"
        ).total_time_us
        t_in = Runtime(GaudiDevice()).execute(
            schedule, scheduler="inorder"
        ).total_time_us
        assert t_look <= t_in * 1.001

    def test_policies_respect_dependencies(self):
        schedule = self._schedule(SLICE_ON)
        for policy in ("inorder", "reorder", "lookahead"):
            result = Runtime(GaudiDevice()).execute(
                schedule, scheduler=policy
            )
            order = list(result.issue_order)
            assert sorted(order) == list(range(len(schedule.ops)))
            position = {idx: pos for pos, idx in enumerate(order)}
            for op in schedule.ops:
                assert all(
                    position[d] < position[op.index] for d in op.deps
                ), f"{policy} violates deps of {op.label}"


class TestIdleHorizon:
    def _timeline(self):
        graph, _, _ = record_attention(batch=8, rows=64, inner=16)
        schedule = GraphCompiler().compile(graph)
        return Runtime(GaudiDevice()).execute(schedule).timeline

    def test_last_compute_never_exceeds_makespan_idle(self):
        tl = self._timeline()
        assert (
            tl.idle_us(EngineKind.MME, until="last_compute")
            <= tl.idle_us(EngineKind.MME, until="makespan") + 1e-9
        )

    def test_idle_fraction_bounded(self):
        tl = self._timeline()
        for until in ("makespan", "last_compute"):
            frac = tl.idle_fraction(EngineKind.MME, until=until)
            assert 0.0 <= frac <= 1.0

    def test_unknown_horizon_raises(self):
        tl = self._timeline()
        with pytest.raises(ExecutionError):
            tl.idle_us(EngineKind.MME, until="finish")
