"""Tests for the encoder-decoder Transformer (Figure 2 in full)."""

import numpy as np
import pytest

from repro import ht
from repro.ht import functional as F
from repro.models import (
    AttentionConfig,
    CrossAttention,
    EncoderDecoderTransformer,
    tiny_seq2seq_config,
)
from repro.synapse import SynapseProfiler
from repro.util.errors import ShapeError


@pytest.fixture()
def rng():
    return np.random.default_rng(21)


class TestCrossAttention:
    def test_output_shape_follows_queries(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4)
        attn = CrossAttention(cfg, rng=rng)
        with ht.record():
            x = ht.randn(2, 5, 8)       # decoder side, T=5
            mem = ht.randn(2, 9, 8)     # encoder side, S=9
            out = attn(x, mem)
            assert out.shape == (2, 5, 8)

    def test_memory_width_checked(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4)
        attn = CrossAttention(cfg, rng=rng)
        with ht.record():
            with pytest.raises(ShapeError, match="memory width"):
                attn(ht.randn(2, 5, 8), ht.randn(2, 9, 10))

    def test_attends_to_memory_content(self, rng):
        cfg = AttentionConfig(num_heads=1, head_dim=4)
        attn = CrossAttention(cfg, rng=rng)
        x = rng.normal(size=(1, 3, 4))
        mem1 = rng.normal(size=(1, 6, 4))
        mem2 = mem1.copy()
        mem2[0, 0] += 5.0
        with ht.record():
            a = attn(ht.tensor(x), ht.tensor(mem1)).numpy()
            b = attn(ht.tensor(x), ht.tensor(mem2)).numpy()
        assert not np.allclose(a, b)

    def test_differentiable_through_both_inputs(self, rng):
        cfg = AttentionConfig(num_heads=2, head_dim=4)
        attn = CrossAttention(cfg, rng=rng)
        with ht.record():
            x = ht.tensor(rng.normal(size=(1, 3, 8)), requires_grad=True)
            mem = ht.tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
            F.mean(F.square(attn(x, mem))).backward()
            assert x.grad is not None and mem.grad is not None


class TestEncoderDecoder:
    @pytest.fixture(scope="class")
    def model(self):
        return EncoderDecoderTransformer(
            tiny_seq2seq_config(vocab_size=19),
            rng=np.random.default_rng(3),
        )

    def test_logits_shape(self, model, rng):
        src = rng.integers(0, 19, size=(2, 7))
        tgt = rng.integers(0, 19, size=(2, 5))
        with ht.record():
            logits = model(ht.tensor(src), ht.tensor(tgt))
            assert logits.shape == (2, 5, 19)

    def test_decoder_is_causal(self, model, rng):
        src = rng.integers(0, 19, size=(1, 6))
        tgt = rng.integers(0, 19, size=(1, 6))
        tgt2 = tgt.copy()
        tgt2[0, -1] = (tgt2[0, -1] + 1) % 19
        with ht.record():
            a = model(ht.tensor(src), ht.tensor(tgt)).numpy()
            b = model(ht.tensor(src), ht.tensor(tgt2)).numpy()
        np.testing.assert_allclose(a[:, :-1], b[:, :-1], rtol=1e-4,
                                   atol=1e-5)

    def test_decoder_sees_the_source(self, model, rng):
        tgt = rng.integers(0, 19, size=(1, 4))
        src1 = rng.integers(0, 19, size=(1, 6))
        src2 = (src1 + 1) % 19
        with ht.record():
            a = model(ht.tensor(src1), ht.tensor(tgt)).numpy()
            b = model(ht.tensor(src2), ht.tensor(tgt)).numpy()
        assert not np.allclose(a, b)

    def test_training_copy_task_converges(self, rng):
        """Seq2seq sanity: learn to copy source tokens."""
        vocab = 11
        model = EncoderDecoderTransformer(
            tiny_seq2seq_config(vocab_size=vocab),
            rng=np.random.default_rng(5),
        )
        opt = ht.SGD(model.parameters(), lr=0.3, momentum=0.9)
        src = rng.integers(1, vocab, size=(8, 5))
        tgt_in = np.zeros_like(src)     # teacher forcing from BOS=0
        tgt_in[:, 1:] = src[:, :-1]
        onehot = np.eye(vocab, dtype=np.float32)[src]
        losses = []
        for _ in range(25):
            with ht.record():
                loss = model.loss(
                    ht.tensor(src), ht.tensor(tgt_in), ht.tensor(onehot)
                )
                loss.backward()
                opt.step()
                opt.zero_grad()
                losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8

    def test_profile_contains_cross_attention_scope(self):
        model = EncoderDecoderTransformer(
            tiny_seq2seq_config(), materialize=False,
        )
        with ht.record("s2s", mode="symbolic") as rec:
            src = ht.input_tensor((4, 16), name="src")
            tgt = ht.input_tensor((4, 16), name="tgt")
            model(src, tgt)
        profile = SynapseProfiler().profile(rec.graph)
        scopes = {ev.scope for ev in profile.timeline.events}
        assert any("cross_attn" in s for s in scopes)
        assert any("encoder" in s for s in scopes)

    def test_rank_validation(self, model):
        with ht.record():
            with pytest.raises(ShapeError, match=r"\(B, N\)"):
                model(ht.randn(4, 4, 4), ht.randn(4, 4))
