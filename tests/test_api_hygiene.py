"""API hygiene: every public item is documented; packages import clean.

Deliverable (e) of the reproduction brief requires doc comments on
every public item — this test makes that a property of the build, not
a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.util", "repro.hw", "repro.tpc", "repro.tpc.kernels",
    "repro.synapse", "repro.ht", "repro.models", "repro.data", "repro.core",
]


def iter_modules():
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, f"{pkg_name}."):
            leaf = info.name.rsplit(".", 1)[-1]
            if leaf.startswith("__"):
                continue  # importing repro.__main__ would run the CLI
            if info.name not in seen:
                seen.add(info.name)
                yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if inspect.isfunction(meth) and not inspect.getdoc(
                        getattr(obj, meth_name)  # getdoc walks the MRO
                    ):
                        undocumented.append(f"{name}.{meth_name}")
        assert not undocumented, (
            f"{module.__name__} has undocumented public items: "
            f"{undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "pkg_name", PACKAGES, ids=str,
    )
    def test_all_lists_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists {name!r}"

    def test_version(self):
        assert repro.__version__
