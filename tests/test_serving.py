"""Serving-layer invariants: the A15 simulator and its decode-path
contracts.

The properties the PR claims, executed:

* conservation — every arrival finishes exactly one of
  completed / truncated (cache-full) / rejected;
* TTFT decomposes exactly into queueing + prefill, and event times are
  causally ordered;
* KV residency (reservations + weights) never exceeds the HBM budget,
  including under a tight budget where the planner — not the slot
  count — bounds the batch;
* the serving JSONL is byte-identical at any ``--jobs`` width;
* the KV-cache boundary: ``max_decode_context`` is the last legal
  decode step, and cached generation reproduces the uncached tokens.
"""

import io
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ht
from repro.core.decode_study import DecodeStudyResult
from repro.core.serving import (
    ServingPoint,
    ServingSimulator,
    ServingWorkload,
    generate_requests,
    kv_bytes_per_token,
    run_serving,
    serving_weight_bytes,
)
from repro.models import (
    GPT2LMHeadModel,
    generate,
    max_decode_context,
    paper_gpt_config,
    record_decode_step,
    scaled,
    tiny_gpt_config,
)
from repro.synapse.serving import ServingRuntime
from repro.util.errors import DataError, ShapeError

SMALL = scaled(paper_gpt_config(), vocab_size=128, seq_len=256)
SMALL_WORKLOAD = ServingWorkload(prompt_range=(4, 48), output_range=(2, 40))


@pytest.fixture(scope="module")
def runtime():
    """One shared step-cost oracle; geometries compile once per module."""
    return ServingRuntime()


@pytest.fixture(scope="module")
def simulator(runtime):
    return ServingSimulator(
        runtime, model_config=SMALL, max_batch=4, ctx_quantum=64
    )


class TestKvCacheBoundary:
    def test_last_legal_context(self):
        cfg = SMALL
        assert max_decode_context(cfg) == cfg.max_seq_len - 1
        rec = record_decode_step(
            cfg, batch=1, context_len=max_decode_context(cfg)
        )
        assert rec.graph is not None

    def test_cache_full_is_rejected_with_contract(self):
        cfg = SMALL
        with pytest.raises(ShapeError, match="exceeds"):
            record_decode_step(cfg, batch=1, context_len=cfg.max_seq_len)
        with pytest.raises(ShapeError, match="finish or evict"):
            record_decode_step(cfg, batch=1, context_len=cfg.max_seq_len)

    def test_serving_loop_truncates_at_boundary(self, runtime):
        # one request whose desired output overruns the cache: it must
        # finish as length_cap with its cache inside the boundary
        sim = ServingSimulator(runtime, model_config=SMALL, max_batch=2)
        trace = generate_requests(
            1, 5.0,
            workload=ServingWorkload(
                prompt_range=(200, 200), output_range=(500, 500)
            ),
        )
        result = sim.run(trace, "continuous")
        (req,) = result.records
        assert req.finish_reason == "length_cap"
        # resident cache entries = prompt + generated - 1: the loop
        # stops exactly when the cache is full, never past it
        assert req.prompt_len + req.generated - 1 == SMALL.max_seq_len
        assert result.metrics()["truncated"] == 1


class TestCachedGeneration:
    def _trained_ish_model(self):
        return GPT2LMHeadModel(
            tiny_gpt_config(vocab_size=31), rng=np.random.default_rng(3)
        )

    def test_cached_matches_uncached_greedy_and_sampled(self):
        model = self._trained_ish_model()
        prompt = [1, 4, 9, 16]
        slow = generate(model, prompt, max_new_tokens=20, use_cache=False)
        fast = generate(model, prompt, max_new_tokens=20)
        assert slow == fast
        s1 = generate(model, prompt, max_new_tokens=20, temperature=0.7,
                      rng=np.random.default_rng(5), use_cache=False)
        s2 = generate(model, prompt, max_new_tokens=20, temperature=0.7,
                      rng=np.random.default_rng(5))
        assert s1 == s2

    def test_cached_matches_uncached_past_the_window(self):
        # the context slides past max_seq_len mid-generation; the
        # cached path must fall back and still match token for token
        model = self._trained_ish_model()
        window = model.config.max_seq_len
        prompt = list(range(1, 30))
        n = window - len(prompt) + 10
        slow = generate(model, prompt, max_new_tokens=n, use_cache=False)
        fast = generate(model, prompt, max_new_tokens=n)
        assert slow == fast


class TestDecodeStudyGuards:
    def _degenerate(self):
        profile = SimpleNamespace(
            total_time_us=0.0,
            schedule=SimpleNamespace(ops=[]),
            timeline=SimpleNamespace(busy_time_us=lambda engine: 0.0),
        )
        return DecodeStudyResult([128], 1, profiles=[profile])

    def test_idle_mme_raises(self):
        with pytest.raises(DataError, match="kept the MME idle"):
            self._degenerate().mme_achieved_tflops(0)

    def test_zero_duration_raises(self):
        with pytest.raises(DataError, match="zero-duration"):
            self._degenerate().tokens_per_second(0)


class TestServingProperties:
    @given(
        seed=st.integers(0, 30),
        rate=st.floats(2.0, 200.0),
        num=st.integers(5, 40),
        policy=st.sampled_from(("static", "continuous")),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_and_causality(self, simulator, seed, rate, num,
                                        policy):
        trace = generate_requests(
            num, rate, workload=SMALL_WORKLOAD, seed=seed
        )
        result = simulator.run(trace, policy)
        m = result.metrics()
        # conservation: every arrival lands in exactly one bucket
        assert m["completed"] + m["truncated"] + m["rejected"] == num
        for r in result.records:
            assert r.finish_reason in ("completed", "length_cap", "rejected")
            if r.finish_reason == "rejected":
                continue
            # causal ordering and the exact TTFT decomposition
            assert r.arrival_us <= r.admitted_us <= r.first_token_us
            assert r.first_token_us <= r.finish_us
            assert r.ttft_us == pytest.approx(
                r.queueing_us + (r.first_token_us - r.admitted_us)
            )
            assert 1 <= r.generated <= r.output_len
            # the cache never outgrew the model's window
            assert r.prompt_len + r.generated <= SMALL.max_seq_len + 1

    @given(
        seed=st.integers(0, 10),
        policy=st.sampled_from(("static", "continuous")),
    )
    @settings(max_examples=10, deadline=None)
    def test_residency_within_budget(self, simulator, seed, policy):
        trace = generate_requests(
            25, 50.0, workload=SMALL_WORKLOAD, seed=seed
        )
        result = simulator.run(trace, policy)
        assert result.peak_kv_actual_bytes <= result.peak_kv_reserved_bytes
        assert (
            result.weight_bytes + result.peak_kv_reserved_bytes
            <= result.budget_bytes
        )

    def test_tight_budget_bounds_batch_below_slots(self):
        # budget holds the weights plus only a few requests' reserved
        # KV: admission must stop there, well before the slot count
        per_request = kv_bytes_per_token(SMALL) * SMALL.max_seq_len
        budget = serving_weight_bytes(SMALL) + 8 * per_request
        runtime = ServingRuntime(hbm_budget=budget)
        sim = ServingSimulator(
            runtime, model_config=SMALL, max_batch=16, ctx_quantum=64
        )
        trace = generate_requests(
            60, 100.0,
            workload=ServingWorkload(
                prompt_range=(32, 128), output_range=(64, 128)
            ),
        )
        result = sim.run(trace, "continuous")
        m = result.metrics()
        assert m["completed"] + m["truncated"] == 60  # nothing starves
        assert 0 < result.peak_in_flight < 16
        assert (
            result.weight_bytes + result.peak_kv_reserved_bytes <= budget
        )


class TestServingJsonl:
    def test_byte_identical_at_any_jobs_width(self):
        points = [
            ServingPoint(policy=p, rate_per_s=r, num_requests=80)
            for r in (10.0, 40.0)
            for p in ("static", "continuous")
        ]
        serial, pooled = io.StringIO(), io.StringIO()
        run_serving(points, stream=serial, jobs=1)
        run_serving(points, stream=pooled, jobs=2)
        assert serial.getvalue() == pooled.getvalue()
        lines = serial.getvalue().splitlines()
        assert len(lines) == len(points)


class TestServingRuntime:
    def test_step_costs_memoize(self):
        runtime = ServingRuntime()
        calls = []

        def factory():
            calls.append(1)
            return record_decode_step(SMALL, batch=2, context_len=64).graph

        first = runtime.step_cost(("t", 2, 64), factory)
        again = runtime.step_cost(("t", 2, 64), factory)
        assert first is again
        assert len(calls) == 1
        assert runtime.lookups == 2 and runtime.measured == 1
        assert runtime.replay_fraction == pytest.approx(0.5)

    def test_infeasible_geometry_memoized(self):
        runtime = ServingRuntime(hbm_budget=1 << 20)  # 1 MiB: nothing fits
        calls = []

        def factory():
            calls.append(1)
            return record_decode_step(SMALL, batch=2, context_len=64).graph

        assert not runtime.feasible(("t", 2, 64), factory)
        assert not runtime.feasible(("t", 2, 64), factory)
        assert len(calls) == 1
        assert runtime.infeasible == 1


class TestServingValidation:
    def test_bad_trace_args(self):
        with pytest.raises(DataError, match="num_requests"):
            generate_requests(0, 10.0)
        with pytest.raises(DataError, match="arrival_rate"):
            generate_requests(5, 0.0)

    def test_unknown_policy(self, simulator):
        trace = generate_requests(2, 10.0, workload=SMALL_WORKLOAD)
        with pytest.raises(Exception, match="unknown serving policy"):
            simulator.run(trace, "clairvoyant")
