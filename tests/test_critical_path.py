"""Tests for critical-path analysis."""

import pytest

from repro import ht
from repro.ht import functional as F
from repro.hw.device import GaudiDevice
from repro.models import TransformerLayer, paper_layer_config
from repro.synapse import (
    GraphCompiler,
    Runtime,
    SynapseProfiler,
    critical_path,
)
from repro.util.errors import ExecutionError


def compile_program(fn):
    with ht.record("cp", mode="symbolic") as rec:
        fn()
    return GraphCompiler().compile(rec.graph)


class TestCriticalPath:
    def test_serial_chain_is_the_whole_path(self):
        schedule = compile_program(lambda: F.exp(F.matmul(
            ht.input_tensor((256, 256), name="a"),
            ht.input_tensor((256, 256), name="b"),
        )))
        cost = GaudiDevice().cost_model
        cp = critical_path(schedule, cost)
        # a pure chain: every op (incl. the DMA hop) is on the path
        assert len(cp) == len(schedule.ops)
        assert cp.parallelism() == pytest.approx(1.0)

    def test_parallel_branches_excluded(self):
        def program():
            a = ht.input_tensor((512, 512), name="a")
            b = ht.input_tensor((512, 512), name="b")
            big = F.matmul(a, b)       # long branch
            small = F.exp(a)           # short independent branch
            return big, small

        schedule = compile_program(program)
        cp = critical_path(schedule, GaudiDevice().cost_model)
        labels = [op.label for op in cp.ops]
        assert any("matmul" in l for l in labels)
        assert not any("exp" in l for l in labels)
        assert cp.parallelism() > 1.0

    def test_path_bounds_execution(self):
        schedule = compile_program(lambda: F.matmul(F.softmax(F.matmul(
            ht.input_tensor((512, 512), name="a"),
            ht.input_tensor((512, 512), name="b"),
        )), ht.input_tensor((512, 512), name="c")))
        device = GaudiDevice()
        cp = critical_path(schedule, device.cost_model)
        executed = Runtime(device).execute(schedule).total_time_us
        # the data path is a lower bound; the serial sum an upper bound
        assert cp.total_us <= executed + 1e-6
        assert executed <= cp.serial_total_us + 1e-6
        assert 0 < cp.share_of(executed) <= 1.0

    def test_empty_schedule(self):
        from repro.synapse.schedule import MemoryPlan, Schedule
        from repro.synapse.graph import Graph

        empty = Schedule(Graph(), [], MemoryPlan(0, 0, {}))
        cp = critical_path(empty, GaudiDevice().cost_model)
        assert len(cp) == 0 and cp.total_us == 0.0
        assert cp.parallelism() == 1.0

    def test_share_of_invalid_makespan(self):
        schedule = compile_program(lambda: F.exp(
            ht.input_tensor((8,), name="x")
        ))
        cp = critical_path(schedule, GaudiDevice().cost_model)
        with pytest.raises(ExecutionError):
            cp.share_of(0.0)

    def test_fig4_path_is_softmax_dominated(self):
        cfg = paper_layer_config("softmax")
        layer = TransformerLayer(cfg, materialize=False)
        with ht.record("fig4", mode="symbolic") as rec:
            layer(ht.input_tensor((128, 2048, cfg.d_model)))
        schedule = GraphCompiler().compile(rec.graph)
        device = GaudiDevice()
        cp = critical_path(schedule, device.cost_model)
        by_src = cp.by_src()
        # softmax + the attention matmuls form the spine of the path
        assert by_src.get("softmax", 0.0) > 0.25 * cp.total_us
        assert by_src.get("matmul", 0.0) > 0.2 * cp.total_us
        # the in-order execution tracks the data path closely here
        # (the chain is inherently serial)
        profile = SynapseProfiler().profile(rec.graph)
        assert cp.share_of(profile.total_time_us) > 0.8

    def test_render(self):
        schedule = compile_program(lambda: F.softmax(F.matmul(
            ht.input_tensor((128, 128), name="a"),
            ht.input_tensor((128, 128), name="b"),
        )))
        cp = critical_path(schedule, GaudiDevice().cost_model)
        text = cp.render()
        assert "critical path" in text and "parallelism" in text
