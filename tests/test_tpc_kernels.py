"""Functional + timing tests for the TPC kernel library and simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.config import TPCClusterConfig
from repro.hw.costmodel import MatmulDims, tpc_matmul_cycles
from repro.hw.dtypes import DType
from repro.tpc import REGISTRY, TPCSimulator
from repro.tpc.kernels.elementwise import UNARY_SPECS
from repro.util.errors import KernelError


@pytest.fixture(scope="module")
def sim():
    return TPCSimulator(TPCClusterConfig(), DType.BF16)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


def ref_softmax(x):
    e = np.exp(x - x.max(-1, keepdims=True))
    return e / e.sum(-1, keepdims=True)


class TestRegistry:
    def test_expected_kernels_present(self):
        names = REGISTRY.names()
        assert "bmm" in names and "softmax" in names and "glu" in names
        for fn in ("relu", "leaky_relu", "gelu", "elu", "exp"):
            assert f"unary_{fn}" in names
        for fn in ("add", "mul"):
            assert f"binary_{fn}" in names
        assert "reduce_sum" in names and "reduce_max" in names

    def test_unknown_kernel_raises(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            REGISTRY.create("not_a_kernel")

    def test_contains(self):
        assert "bmm" in REGISTRY
        assert "nope" not in REGISTRY


class TestBmmKernel:
    def test_matches_numpy(self, sim, rng):
        a = rng.normal(size=(3, 37, 19)).astype(np.float32)
        b = rng.normal(size=(3, 19, 45)).astype(np.float32)
        r = sim.launch(REGISTRY.create("bmm"), {"a": a, "b": b})
        np.testing.assert_allclose(r.outputs["c"], a @ b, rtol=1e-5)

    def test_shape_validation(self, sim):
        k = REGISTRY.create("bmm")
        with pytest.raises(KernelError, match="batch mismatch"):
            sim.launch(k, shapes={"a": (2, 4, 4), "b": (3, 4, 4)})
        with pytest.raises(KernelError, match="contraction mismatch"):
            sim.launch(k, shapes={"a": (2, 4, 5), "b": (2, 4, 4)})

    def test_missing_input(self, sim):
        with pytest.raises(KernelError, match="missing input"):
            sim.launch(REGISTRY.create("bmm"), shapes={"a": (2, 4, 4)})

    @pytest.mark.parametrize(
        "size,paper_tflops",
        [(128, 1.86), (256, 2.05), (512, 2.13), (1024, 2.18), (2048, 2.19)],
    )
    def test_table2_tpc_calibration(self, sim, size, paper_tflops):
        r = sim.launch(
            REGISTRY.create("bmm"),
            shapes={"a": (64, size, size), "b": (64, size, size)},
        )
        assert r.achieved_tflops == pytest.approx(paper_tflops, rel=0.10)

    def test_consistent_with_hw_aggregate_model(self, sim):
        # The framework-level analytic (hw.tpc_matmul_cycles) and the
        # kernel stream should agree within 20% — they model the same
        # kernel at different granularity.
        cfg = TPCClusterConfig()
        for s in (256, 1024):
            dims = MatmulDims(8, s, s, s)
            agg = tpc_matmul_cycles(cfg, DType.BF16, dims)
            r = sim.launch(
                REGISTRY.create("bmm"), shapes={"a": (8, s, s), "b": (8, s, s)}
            )
            assert r.cycles == pytest.approx(agg, rel=0.20)

    def test_load_balance_good_for_large_launch(self, sim):
        r = sim.launch(
            REGISTRY.create("bmm"), shapes={"a": (64, 512, 512), "b": (64, 512, 512)}
        )
        assert r.balance > 0.95

    @given(
        b=st.integers(1, 4), m=st.integers(1, 40),
        k=st.integers(1, 40), n=st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_bmm_random_shapes(self, sim, b, m, k, n):
        rng = np.random.default_rng(b * 1000 + m * 100 + k * 10 + n)
        a = rng.normal(size=(b, m, k)).astype(np.float32)
        bb = rng.normal(size=(b, k, n)).astype(np.float32)
        r = sim.launch(REGISTRY.create("bmm"), {"a": a, "b": bb})
        np.testing.assert_allclose(r.outputs["c"], a @ bb, rtol=1e-4, atol=1e-5)


class TestSoftmaxKernel:
    def test_matches_reference(self, sim, rng):
        x = rng.normal(size=(5, 7, 33)).astype(np.float32)
        r = sim.launch(REGISTRY.create("softmax"), {"x": x})
        np.testing.assert_allclose(r.outputs["y"], ref_softmax(x), rtol=1e-5)

    def test_rows_sum_to_one(self, sim, rng):
        x = (rng.normal(size=(64, 50)) * 10).astype(np.float32)
        r = sim.launch(REGISTRY.create("softmax"), {"x": x})
        np.testing.assert_allclose(r.outputs["y"].sum(-1), 1.0, rtol=1e-5)

    def test_numerically_stable_for_large_logits(self, sim):
        x = np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32)
        r = sim.launch(REGISTRY.create("softmax"), {"x": x})
        assert np.isfinite(r.outputs["y"]).all()
        np.testing.assert_allclose(r.outputs["y"][0, :2], 0.5, rtol=1e-5)

    def test_long_rows_cheaper_per_element(self, sim):
        # Horizontal reductions are amortized over longer rows, so
        # cycles/element must drop with row length — the flip side of
        # the paper's "short reductions are SIMD-hostile" point.
        k = REGISTRY.create("softmax")
        short = sim.launch(k, shapes={"x": (4096, 128)})
        long = sim.launch(k, shapes={"x": (256, 2048)})
        per_el_short = short.cycles / (4096 * 128)
        per_el_long = long.cycles / (256 * 2048)
        assert per_el_long < per_el_short


class TestUnaryKernels:
    @pytest.mark.parametrize("fn", sorted(UNARY_SPECS))
    def test_matches_reference(self, sim, rng, fn):
        x = rng.normal(size=(513,)).astype(np.float32)
        if fn in ("sqrt", "log"):
            x = np.abs(x) + 0.1
        r = sim.launch(REGISTRY.create(f"unary_{fn}"), {"x": x})
        expected = UNARY_SPECS[fn].fn(x)
        np.testing.assert_allclose(r.outputs["y"], expected, rtol=1e-5, atol=1e-6)

    def test_relu_cheaper_than_gelu(self, sim):
        shape = {"x": (1 << 20,)}
        t_relu = sim.launch(REGISTRY.create("unary_relu"), shapes=shape).time_us
        t_gelu = sim.launch(REGISTRY.create("unary_gelu"), shapes=shape).time_us
        assert t_gelu > t_relu

    def test_unknown_unary_rejected(self):
        from repro.tpc.kernels.elementwise import UnaryElementwiseKernel

        with pytest.raises(KernelError, match="unknown unary"):
            UnaryElementwiseKernel("swish9000")


class TestBinaryKernels:
    @pytest.mark.parametrize("fn", ["add", "sub", "mul", "max"])
    def test_matches_reference(self, sim, rng, fn):
        x = rng.normal(size=(100,)).astype(np.float32)
        y = rng.normal(size=(100,)).astype(np.float32)
        r = sim.launch(REGISTRY.create(f"binary_{fn}"), {"x": x, "y": y})
        from repro.tpc.kernels.elementwise import BINARY_SPECS

        np.testing.assert_allclose(
            r.outputs["z"], BINARY_SPECS[fn].fn(x, y), rtol=1e-6
        )

    def test_shape_mismatch_rejected(self, sim):
        with pytest.raises(KernelError, match="shape mismatch"):
            sim.launch(
                REGISTRY.create("binary_add"),
                shapes={"x": (3,), "y": (4,)},
            )


class TestGluKernel:
    def test_matches_reference(self, sim, rng):
        x = rng.normal(size=(6, 10)).astype(np.float32)
        r = sim.launch(REGISTRY.create("glu"), {"x": x})
        a, b = x[..., :5], x[..., 5:]
        np.testing.assert_allclose(
            r.outputs["y"], a / (1 + np.exp(-b)) * 1.0, rtol=1e-5
        )

    def test_odd_last_dim_rejected(self, sim):
        with pytest.raises(KernelError, match="even"):
            sim.launch(REGISTRY.create("glu"), shapes={"x": (4, 7)})

    def test_glu_slower_than_relu_per_output(self, sim):
        # Fig 7: GLU is the slowest activation even before the
        # recompilation penalty.
        n = 1 << 20
        t_glu = sim.launch(REGISTRY.create("glu"), shapes={"x": (n, 2)}).time_us
        t_relu = sim.launch(
            REGISTRY.create("unary_relu"), shapes={"x": (n, 1)}
        ).time_us
        assert t_glu > t_relu


class TestReduceKernels:
    def test_sum_matches(self, sim, rng):
        x = rng.normal(size=(17, 65)).astype(np.float32)
        r = sim.launch(REGISTRY.create("reduce_sum"), {"x": x})
        np.testing.assert_allclose(r.outputs["y"], x.sum(-1), rtol=1e-4)

    def test_max_matches(self, sim, rng):
        x = rng.normal(size=(8, 9, 33)).astype(np.float32)
        r = sim.launch(REGISTRY.create("reduce_max"), {"x": x})
        np.testing.assert_allclose(r.outputs["y"], x.max(-1))

    def test_reduction_efficiency_poor_on_short_rows(self, sim):
        # 8-element rows: the horizontal combine dominates entirely.
        k = REGISTRY.create("reduce_sum")
        short = sim.launch(k, shapes={"x": (8192, 8)})
        long = sim.launch(k, shapes={"x": (32, 2048)})
        assert short.cycles / (8192 * 8) > 10 * long.cycles / (32 * 2048)


class TestSimulatorContract:
    def test_requires_exactly_one_input_kind(self, sim):
        k = REGISTRY.create("unary_relu")
        with pytest.raises(KernelError, match="exactly one"):
            sim.launch(k)
        with pytest.raises(KernelError, match="exactly one"):
            sim.launch(k, {"x": np.ones(3, np.float32)}, shapes={"x": (3,)})

    def test_functional_limit_guards_paper_scale(self, sim):
        k = REGISTRY.create("unary_relu")
        huge = np.lib.stride_tricks.as_strided(
            np.zeros(1, np.float32), shape=(10**9,), strides=(0,)
        )
        with pytest.raises(KernelError, match="timing-only"):
            sim.launch(k, {"x": huge})

    def test_timing_only_launch_has_no_outputs(self, sim):
        r = sim.launch(REGISTRY.create("unary_relu"), shapes={"x": (10**9,)})
        assert r.outputs is None
        assert r.time_us > 0
        assert r.output_shapes == {"y": (10**9,)}

    def test_more_cores_faster(self):
        shapes = {"a": (8, 256, 256), "b": (8, 256, 256)}
        t8 = TPCSimulator(TPCClusterConfig(num_cores=8)).launch(
            REGISTRY.create("bmm"), shapes=shapes
        ).time_us
        t2 = TPCSimulator(TPCClusterConfig(num_cores=2)).launch(
            REGISTRY.create("bmm"), shapes=shapes
        ).time_us
        assert t2 > 3 * t8
