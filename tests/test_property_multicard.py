"""Property-based tests: multi-card runtime invariants.

Random tiny training steps (varying width/depth) compiled with
collective injection at random bucket sizes, executed across random
HLS-1 populations. The properties pin the contracts the A4/A12
extensions rely on:

* engines never run two ops at once on any single card;
* a 1-card HLS-1 replay is byte-identical to the single-card Runtime;
* adding cards never makes the step faster than one card, and never
  slower than serializing compute plus every bucket's analytic
  all-reduce;
* exposed communication is non-negative and bounded by the card's
  total NIC busy time.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro import ht
from repro.ht import functional as F
from repro.hw.config import HLS1Config
from repro.hw.costmodel import EngineKind
from repro.hw.device import GaudiDevice, HLS1Device
from repro.synapse import (
    GraphCompiler,
    HLS1Runtime,
    Runtime,
    default_compiler_options,
    validate_no_engine_overlap,
)
from repro.synapse.runtime import collective_plans


def record_step(width, depth, batch):
    lins = [ht.Linear(width, width, materialize=False) for _ in range(depth)]
    with ht.record("prop-train", mode="symbolic") as rec:
        h = ht.input_tensor((batch, width), name="x")
        for lin in lins:
            h = F.relu(lin(h))
        loss = F.mean(h)
        loss.backward()
        params = [p for lin in lins for p in lin.parameters()]
        ht.SGD(params, lr=0.01).step()
    return rec.graph


def compile_step(graph, bucket_mb, overlap):
    options = dataclasses.replace(
        default_compiler_options(),
        inject_collectives=True,
        bucket_mb=bucket_mb,
        comm_overlap=overlap,
    )
    return GraphCompiler(options=options).compile(graph)


width_st = st.integers(4, 24)
depth_st = st.integers(1, 3)
batch_st = st.integers(2, 6)
cards_st = st.sampled_from([1, 2, 4, 8])
bucket_st = st.sampled_from([0.001, 0.01, 25.0])


class TestMultiCardProperties:
    @given(width_st, depth_st, batch_st, cards_st, bucket_st, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_no_engine_overlap_any_population(
        self, width, depth, batch, cards, bucket_mb, overlap
    ):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb, overlap)
        system = HLS1Device(HLS1Config(num_cards=cards))
        result = HLS1Runtime(system).execute(schedule)
        validate_no_engine_overlap(result.timeline)
        # symmetric replay: every card traces every scheduled op
        for c in range(cards):
            on_card = [
                ev for ev in result.timeline.events if ev.card == c
            ]
            assert len(on_card) == len(schedule.ops)

    @given(width_st, depth_st, batch_st, bucket_st)
    @settings(max_examples=15, deadline=None)
    def test_one_card_is_byte_identical(self, width, depth, batch, bucket_mb):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb, True)
        r_hls = HLS1Runtime(
            HLS1Device(HLS1Config(num_cards=1))
        ).execute(schedule)
        r_one = Runtime(GaudiDevice()).execute(schedule)
        key = lambda ev: (ev.name, ev.engine.value, ev.start_us, ev.dur_us)
        assert (
            sorted(map(key, r_hls.timeline.events))
            == sorted(map(key, r_one.timeline.events))
        )

    @given(width_st, depth_st, batch_st, cards_st, bucket_st, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_step_time_bounds(
        self, width, depth, batch, cards, bucket_mb, overlap
    ):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb, overlap)
        single = Runtime(GaudiDevice()).execute(schedule).total_time_us
        system = HLS1Device(HLS1Config(num_cards=cards))
        result = HLS1Runtime(system).execute(schedule)
        assert result.total_time_us >= single - 1e-9
        # worst case: compute, then every bucket's ring fully serial
        plans = collective_plans(schedule, cards, HLS1Config().interconnect)
        serial_comm = sum(p.analytic_time_us for p in plans.values())
        assert result.total_time_us <= single + serial_comm + 1e-6

    @given(width_st, depth_st, batch_st, cards_st, bucket_st)
    @settings(max_examples=15, deadline=None)
    def test_exposed_comm_bounded_by_nic_busy(
        self, width, depth, batch, cards, bucket_mb
    ):
        graph = record_step(width, depth, batch)
        schedule = compile_step(graph, bucket_mb, True)
        system = HLS1Device(HLS1Config(num_cards=cards))
        result = HLS1Runtime(system).execute(schedule)
        nic_busy = sum(
            ev.dur_us for ev in result.timeline.events
            if ev.engine is EngineKind.NIC and ev.card == 0
        )
        assert 0.0 <= result.exposed_comm_us <= nic_busy + 1e-9
