"""The GFormer kernel pack: fused softmax, windowed and flash attention.

Functional TPCSimulator launches against numpy oracles, plus the
kernel <-> aggregate-cost-model consistency contracts (each kernel's
FLOP count and its pricing twin in :mod:`repro.hw.costmodel` describe
the same work).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.config import TPCClusterConfig
from repro.hw.costmodel import (
    exp_offload_dims,
    flash_attention_dims,
    windowed_attention_dims,
)
from repro.hw.dtypes import DType
from repro.tpc import REGISTRY, TPCSimulator
from repro.util.errors import KernelError


@pytest.fixture(scope="module")
def sim():
    return TPCSimulator(TPCClusterConfig(), DType.BF16)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2024)


def ref_softmax(x):
    e = np.exp(x - x.max(-1, keepdims=True))
    return e / e.sum(-1, keepdims=True)


def ref_attention(q, k, v, *, scale=None, keep=None):
    scale = scale if scale is not None else q.shape[-1] ** -0.5
    s = (q @ np.swapaxes(k, -1, -2)) * scale
    if keep is not None:
        s = np.where(keep, s, -1.0e9)
    return ref_softmax(s) @ v


def band_mask(seq, window, causal):
    i = np.arange(seq)[:, None]
    j = np.arange(seq)[None, :]
    if causal:
        return (j <= i) & (j > i - window)
    return (j >= i - (window - 1) // 2) & (j <= i + window // 2)


class TestFusedSoftmaxKernel:
    def test_matches_numpy(self, sim, rng):
        x = rng.normal(size=(3, 37, 29)).astype(np.float32)
        r = sim.launch(REGISTRY.create("fused_softmax"), {"x": x})
        np.testing.assert_allclose(r.outputs["y"], ref_softmax(x), rtol=1e-5)

    def test_bit_identical_to_naive_softmax_kernel(self, sim, rng):
        """The MME-side basis exp is exact in this model, so the fused
        kernel reproduces the naive kernel bit for bit."""
        x = rng.normal(size=(4, 19, 33)).astype(np.float32)
        fused = sim.launch(REGISTRY.create("fused_softmax"), {"x": x})
        naive = sim.launch(REGISTRY.create("softmax"), {"x": x})
        assert np.array_equal(fused.outputs["y"], naive.outputs["y"])

    def test_faster_than_naive_softmax(self, sim):
        """The whole point: dropping the EXP_STALL transcendental for a
        one-cycle basis decomposition beats the naive kernel."""
        shapes = {"x": (64, 512, 512)}
        fused = sim.launch(REGISTRY.create("fused_softmax"), shapes=shapes)
        naive = sim.launch(REGISTRY.create("softmax"), shapes=shapes)
        assert fused.time_us < naive.time_us

    def test_offload_dims_match_costmodel(self):
        k = REGISTRY.create("fused_softmax")
        shape = (8, 128, 256)
        assert k.mme_offload_dims({"x": shape}) == exp_offload_dims(shape)


class TestWindowedAttentionKernel:
    @pytest.mark.parametrize("causal", [True, False])
    def test_matches_banded_oracle(self, sim, rng, causal):
        b, seq, d, window = 2, 48, 8, 12
        q = rng.normal(size=(b, seq, d)).astype(np.float32)
        k = rng.normal(size=(b, seq, d)).astype(np.float32)
        v = rng.normal(size=(b, seq, d)).astype(np.float32)
        kern = REGISTRY.create(
            "windowed_attention", window=window, causal=causal
        )
        r = sim.launch(kern, {"q": q, "k": k, "v": v})
        oracle = ref_attention(q, k, v, keep=band_mask(seq, window, causal))
        np.testing.assert_allclose(
            r.outputs["out"], oracle, rtol=1e-4, atol=1e-5
        )

    def test_skips_out_of_band_work(self):
        """Banded FLOPs scale with the window, not the sequence."""
        kern = REGISTRY.create("windowed_attention", window=64)
        narrow = kern.flops({"q": (1, 2048, 64), "k": (1, 2048, 64),
                             "v": (1, 2048, 64)})
        full = 2.0 * 2048 * 2048 * (64 + 64)  # dense QK^T + PV
        assert narrow < 0.05 * full

    @given(seq=st.integers(8, 96), window=st.integers(1, 96),
           causal=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_flops_agree_with_costmodel_twin(self, seq, window, causal):
        """The kernel's exact banded FLOP count and the aggregate
        model's mean-span GEMM twin describe the same work."""
        d = 16
        kern = REGISTRY.create(
            "windowed_attention", window=window, causal=causal
        )
        shapes = {"q": (2, seq, d), "k": (2, seq, d), "v": (2, seq, d)}
        twin = windowed_attention_dims(2, seq, d, window, causal)
        ratio = kern.flops(shapes) / twin.flops
        assert 0.6 <= ratio <= 1.6

    def test_shape_validation(self, sim):
        kern = REGISTRY.create("windowed_attention", window=8)
        with pytest.raises(KernelError, match="square attention"):
            sim.launch(kern, shapes={
                "q": (1, 16, 8), "k": (1, 24, 8), "v": (1, 24, 8),
            })
        with pytest.raises(KernelError, match="window must be >= 1"):
            REGISTRY.create("windowed_attention", window=0)


class TestFlashAttentionKernel:
    @pytest.mark.parametrize("causal", [True, False])
    def test_matches_exact_attention(self, sim, rng, causal):
        b, seq, d = 2, 160, 16  # forces partial tiles at 128x128 blocks
        q = rng.normal(size=(b, seq, d)).astype(np.float32)
        k = rng.normal(size=(b, seq, d)).astype(np.float32)
        v = rng.normal(size=(b, seq, d)).astype(np.float32)
        kern = REGISTRY.create("flash_attention", causal=causal)
        r = sim.launch(kern, {"q": q, "k": k, "v": v})
        keep = band_mask(seq, seq, True) if causal else None
        oracle = ref_attention(q, k, v, keep=keep)
        np.testing.assert_allclose(
            r.outputs["out"], oracle, rtol=1e-4, atol=1e-5
        )

    def test_causal_skips_tiles(self):
        """Causal masking skips whole above-diagonal tile pairs."""
        shapes = {"q": (1, 1024, 64), "k": (1, 1024, 64),
                  "v": (1, 1024, 64)}
        causal = REGISTRY.create("flash_attention", causal=True)
        dense = REGISTRY.create("flash_attention", causal=False)
        assert causal.flops(shapes) < 0.7 * dense.flops(shapes)

    @given(seq=st.integers(128, 512))
    @settings(max_examples=25, deadline=None)
    def test_flops_agree_with_costmodel_twin(self, seq):
        """Non-causal flash tiles the dense attention FLOPs exactly, so
        the kernel and its MME pricing twin must agree closely. (Below
        one 128-wide tile the kernel pays the full-tile price while the
        twin clamps, so the contract starts at seq >= k_block.)"""
        d = 32
        kern = REGISTRY.create("flash_attention")
        shapes = {"q": (2, seq, d), "k": (2, seq, d), "v": (2, seq, d)}
        twin = flash_attention_dims(
            2, seq, d, kern.q_block, kern.k_block, causal=False
        )
        ratio = kern.flops(shapes) / twin.flops
        assert 0.6 <= ratio <= 1.6

    def test_default_tile_fills_the_mme_array(self):
        """The default tile geometry matches the 128x128 MAC array —
        smaller tiles would leave array rows dark (spatial < 1)."""
        kern = REGISTRY.create("flash_attention")
        assert kern.q_block == 128 and kern.k_block == 128

    def test_local_memory_fits_at_default_tiles(self, sim):
        """The 128x128 member stream must fit the 80 KB local bank —
        the score tile streams through a strip, never fully resident."""
        r = sim.launch(
            REGISTRY.create("flash_attention"),
            shapes={"q": (4, 2048, 64), "k": (4, 2048, 64),
                    "v": (4, 2048, 64)},
        )
        assert r.time_us > 0

    def test_shape_validation(self, sim):
        kern = REGISTRY.create("flash_attention")
        with pytest.raises(KernelError, match="batch mismatch"):
            sim.launch(kern, shapes={
                "q": (2, 16, 8), "k": (1, 16, 8), "v": (1, 16, 8),
            })


class TestPackTimingSanity:
    def test_windowed_band_beats_dense_sweeps(self, sim):
        """At a long sequence with a narrow band, the banded kernel
        undercuts both dense alternatives: the flash kernel's full
        tile sweep and even the *softmax stage alone* of the naive
        path (which still owes two dense matmuls on top). Flash's own
        layer-level win comes from running on the MME — the A17 study
        and the benchmark gate cover that side."""
        b, seq, d = 4, 2048, 64
        qkv = {"q": (b, seq, d), "k": (b, seq, d), "v": (b, seq, d)}
        windowed = sim.launch(
            REGISTRY.create("windowed_attention", window=128), shapes=qkv
        )
        flash = sim.launch(REGISTRY.create("flash_attention"), shapes=qkv)
        naive_softmax = sim.launch(
            REGISTRY.create("softmax"), shapes={"x": (b, seq, seq)}
        )
        assert windowed.time_us < flash.time_us
        assert windowed.time_us < naive_softmax.time_us

    def test_member_balance_reasonable(self, sim):
        r = sim.launch(
            REGISTRY.create("windowed_attention", window=64),
            shapes={"q": (8, 1024, 64), "k": (8, 1024, 64),
                    "v": (8, 1024, 64)},
        )
        assert r.balance > 0.8
