"""Tests for KV-cached decode modeling (extension A9)."""

import pytest

from repro.core import run_decode_study
from repro.hw.costmodel import EngineKind
from repro.models import paper_gpt_config, tiny_gpt_config
from repro.models.kvcache import decode_shapes, record_decode_step
from repro.synapse import SynapseProfiler
from repro.util.errors import ShapeError


class TestDecodeShapes:
    def test_derivation(self):
        cfg = paper_gpt_config()
        s = decode_shapes(cfg, batch=4, context_len=100)
        assert s.d_model == 512 and s.num_heads == 8
        assert s.vocab_size == cfg.vocab_size

    def test_context_bound(self):
        cfg = tiny_gpt_config()
        with pytest.raises(ShapeError, match="exceeds"):
            decode_shapes(cfg, 1, cfg.max_seq_len)


class TestRecordDecodeStep:
    @pytest.fixture(scope="class")
    def profile(self):
        rec = record_decode_step(paper_gpt_config(), batch=1,
                                 context_len=256)
        return SynapseProfiler().profile(rec.graph)

    def test_graph_contains_per_layer_attention(self, profile):
        scopes = {ev.scope for ev in profile.timeline.events}
        assert any("layer0" in s for s in scopes)
        assert any("layer1" in s for s in scopes)
        assert any("head" in s for s in scopes)

    def test_softmax_present_but_tiny(self, profile):
        share = profile.timeline.src_share("softmax", EngineKind.TPC)
        assert 0.0 < share < 0.9

    def test_cache_append_is_recorded(self, profile):
        assert any("concat_rows" in op.label
                   for op in profile.schedule.ops)

    def test_matvec_work_is_mme_mapped(self, profile):
        # Table 1 still applies: the matvecs are matmul ops on the MME
        mme_ops = profile.schedule.engine_queue(EngineKind.MME)
        assert len(mme_ops) >= 2 * 6 + 1  # 6 weight matmuls/layer + head


class TestDecodeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_decode_study((128, 512, 1024))

    def test_checks_pass(self, result):
        failed = [str(c) for c in result.checks() if not c.passed]
        assert not failed, failed

    def test_mme_rate_collapse(self, result):
        # the headline: decode matvecs waste the MAC array
        assert result.mme_achieved_tflops(0) < 0.5
        assert result.training_mme_tflops > 10.0

    def test_latency_grows_with_context(self, result):
        ms = result.step_ms()
        assert ms == sorted(ms)
        assert ms[-1] > ms[0]

    def test_throughput_decreases_with_context(self, result):
        tps = [result.tokens_per_second(i) for i in range(len(result.contexts))]
        assert tps[0] > tps[-1]

    def test_batching_grows_sublinearly(self):
        # weight matmuls don't scale with batch (one weight stream for
        # all tokens); attention matvecs do — so the step grows
        # sub-linearly and per-token cost improves, but modestly
        # (per-head caches can't be packed into one GEMM).
        b1 = run_decode_study((512,), batch=1)
        b8 = run_decode_study((512,), batch=8)
        assert b8.step_ms()[0] < 8 * b1.step_ms()[0]
        assert b8.tokens_per_second(0) > b1.tokens_per_second(0)

    def test_render(self, result):
        text = result.render()
        assert "tokens/s" in text and "MME TFLOPS" in text
